// Failure-injection tests: corrupted checkpoints, malformed predictions,
// hostile inputs, resource-limit behaviour, and shard workers dying
// mid-chunk. The library must fail loudly and precisely (or, for the shard
// driver, recover to an oracle-identical merge), never crash or silently
// mis-score.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "cinterp/interp.hpp"
#include "clex/lexer.hpp"
#include "core/evaluate.hpp"
#include "core/model.hpp"
#include "cparse/parser.hpp"
#include "metrics/metrics.hpp"
#include "mpisim/runner.hpp"
#include "nn/transformer.hpp"
#include "shard/eval.hpp"
#include "shard/protocol.hpp"
#include "shard/transport.hpp"
#include "support/check.hpp"
#include "toklib/vocab.hpp"
#include "testing.hpp"

namespace mpirical {
namespace {

TEST(FailureInjection, TruncatedTransformerCheckpoint) {
  MR_SEEDED_RNG(rng, 1);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 16;
  cfg.d_model = 8;
  cfg.heads = 2;
  cfg.ffn_dim = 16;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 16;
  nn::Transformer model(cfg, rng);
  std::string blob = model.serialize();
  blob.resize(blob.size() / 2);
  EXPECT_THROW(nn::Transformer::deserialize(blob), Error);
}

TEST(FailureInjection, TrailingGarbageInCheckpoint) {
  MR_SEEDED_RNG(rng, 2);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 16;
  cfg.d_model = 8;
  cfg.heads = 2;
  cfg.ffn_dim = 16;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 16;
  nn::Transformer model(cfg, rng);
  std::string blob = model.serialize() + "junk";
  EXPECT_THROW(nn::Transformer::deserialize(blob), Error);
}

TEST(FailureInjection, MissingModelFile) {
  EXPECT_THROW(core::MpiRical::load("/nonexistent/path/model.bin"), Error);
}

TEST(FailureInjection, VocabWithWrongSpecialOrderRejected) {
  EXPECT_THROW(tok::Vocab::deserialize("[SOS]\n[PAD]\n"), Error);
  EXPECT_THROW(tok::Vocab::deserialize(""), Error);
}

TEST(FailureInjection, DeeplyNestedExpressionParses) {
  std::string expr = "x";
  for (int i = 0; i < 80; ++i) expr = "(" + expr + " + 1)";
  EXPECT_NO_THROW(parse::parse_expression_string(expr));
}

TEST(FailureInjection, HugeArrayDeclarationRejectedByInterpreter) {
  const auto tu = parse::parse_translation_unit(
      "int main() { double a[200000000]; return 0; }");
  interp::Interpreter interp(*tu, nullptr);
  EXPECT_THROW(interp.run_main(), Error);
}

TEST(FailureInjection, NegativeArraySizeRejected) {
  const auto tu = parse::parse_translation_unit(
      "int main() { int n = 0 - 4; double a[n]; return 0; }");
  interp::Interpreter interp(*tu, nullptr);
  EXPECT_THROW(interp.run_main(), Error);
}

TEST(FailureInjection, NullPointerDereference) {
  const auto tu = parse::parse_translation_unit(
      "int main() { int *p = NULL; return *p; }");
  interp::Interpreter interp(*tu, nullptr);
  EXPECT_THROW(interp.run_main(), Error);
}

TEST(FailureInjection, RecvBufferTooSmallReported) {
  const std::string src = R"(#include <mpi.h>
int main(int argc, char **argv) {
    int rank;
    int size;
    int big[4];
    int small[2];
    MPI_Status status;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    if (rank == 0) {
        MPI_Send(big, 4, MPI_INT, 1, 0, MPI_COMM_WORLD);
    } else if (rank == 1) {
        MPI_Recv(small, 2, MPI_INT, 0, 0, MPI_COMM_WORLD, &status);
    }
    MPI_Finalize();
    return 0;
}
)";
  mpisim::RunOptions opts;
  opts.num_ranks = 2;
  const auto result = mpisim::run_mpi_source(src, opts);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("longer than receive buffer"),
            std::string::npos);
}

TEST(FailureInjection, RankFailureUnblocksCollectivePeers) {
  // Rank 1 divides by zero before the collective; everyone else is inside
  // MPI_Barrier and must be released with an error, not hang.
  const std::string src = R"(#include <mpi.h>
int main(int argc, char **argv) {
    int rank;
    int size;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    if (rank == 1) {
        int x = 1 / (rank - rank);
        size = x;
    }
    MPI_Barrier(MPI_COMM_WORLD);
    MPI_Finalize();
    return 0;
}
)";
  mpisim::RunOptions opts;
  opts.num_ranks = 3;
  const auto result = mpisim::run_mpi_source(src, opts);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("rank 1"), std::string::npos);
}

TEST(FailureInjection, TokensToCodeHandlesPathologicalStreams) {
  // Directive jammed mid-line, double newlines, stray [SEP]-like text --
  // the rebuild must stay lexable.
  const std::vector<std::string> tokens = {
      "int", "x", ";", "#include <mpi.h>", "int", "y", ";",
      "[NL]", "[NL]", "z", "=", "1", ";"};
  const std::string code = tok::tokens_to_code(tokens);
  EXPECT_NO_THROW(lex::tokenize(code));
}

TEST(FailureInjection, MatchingToleratesAbsurdLines) {
  const std::vector<ast::CallSite> pred = {{"MPI_Send", 1000000}};
  const std::vector<ast::CallSite> truth = {{"MPI_Send", 1}};
  const auto counts = metrics::match_call_sites(pred, truth, 1);
  EXPECT_EQ(counts.tp, 0u);
  EXPECT_EQ(counts.fp, 1u);
  EXPECT_EQ(counts.fn, 1u);
}

// ---- sharded evaluation under worker death ----------------------------------

namespace shard_failure {

/// Tiny untrained model + a small split -- decode is deterministic, so the
/// unsharded run is an exact oracle for the fault-injected sharded runs.
struct EvalHarness {
  corpus::Dataset dataset;
  core::MpiRical model;
  std::vector<corpus::Example> split;
};

const EvalHarness& eval_harness() {
  static const EvalHarness* h = [] {
    corpus::DatasetConfig dcfg;
    dcfg.corpus_size = 260;
    dcfg.seed = 55;
    dcfg.max_tokens = 180;
    core::ModelConfig mcfg;
    mcfg.d_model = 32;
    mcfg.heads = 2;
    mcfg.ffn_dim = 64;
    mcfg.encoder_layers = 1;
    mcfg.decoder_layers = 1;
    mcfg.dropout = 0.0f;
    mcfg.max_src_tokens = 256;
    mcfg.max_tgt_tokens = 32;
    mcfg.seed = 919;
    auto* built = new EvalHarness;
    built->dataset = corpus::build_dataset(dcfg);
    built->model = core::MpiRical::create(built->dataset, mcfg);
    auto& pool = built->dataset.test;
    for (const auto& ex : built->dataset.train) {
      if (pool.size() >= 7) break;
      pool.push_back(ex);
    }
    pool.resize(std::min<std::size_t>(pool.size(), 7));
    built->split = pool;
    return built;
  }();
  return *h;
}

void expect_oracle_equal(const core::EvalSummary& merged,
                         const core::EvalSummary& oracle) {
  using testutil::double_bits;
  EXPECT_EQ(merged.examples, oracle.examples);
  EXPECT_TRUE(merged.m_counts == oracle.m_counts);
  EXPECT_TRUE(merged.mcc_counts == oracle.mcc_counts);
  EXPECT_EQ(double_bits(merged.bleu), double_bits(oracle.bleu));
  EXPECT_EQ(double_bits(merged.meteor), double_bits(oracle.meteor));
  EXPECT_EQ(double_bits(merged.rouge_l), double_bits(oracle.rouge_l));
  EXPECT_EQ(double_bits(merged.acc), double_bits(oracle.acc));
}

/// N connected (driver, worker) transport pairs over real 127.0.0.1
/// sockets, for the fault matrix over TCP.
struct TcpFleet {
  std::vector<std::unique_ptr<shard::Transport>> driver_ends;
  std::vector<std::unique_ptr<shard::Transport>> worker_ends;

  explicit TcpFleet(std::size_t n) {
    std::uint16_t port = 0;
    const int listen_fd = shard::tcp_listen("127.0.0.1", 0,
                                            static_cast<int>(n) + 1, &port);
    for (std::size_t i = 0; i < n; ++i) {
      worker_ends.push_back(std::make_unique<shard::SocketTransport>(
          shard::tcp_connect("127.0.0.1", port, 5000)));
      driver_ends.push_back(std::make_unique<shard::SocketTransport>(
          shard::tcp_accept(listen_fd)));
    }
    ::close(listen_fd);
  }

  std::vector<shard::Transport*> driver_ptrs() const {
    std::vector<shard::Transport*> out;
    for (const auto& t : driver_ends) out.push_back(t.get());
    return out;
  }
};

}  // namespace shard_failure

TEST(FailureInjection, ShardWorkerDeathMidChunkReassigned) {
  using namespace shard_failure;
  const auto& h = eval_harness();
  testutil::ScopedEnv wave("MPIRICAL_DECODE_WAVE", "2");  // 7 ex -> 4 chunks
  const core::EvalSummary oracle = core::evaluate_model(h.model, h.split);

  // Worker 0 dies after 3 protocol sends (its task request, grant ack, and
  // one result record -- i.e. mid-chunk); worker 1 survives and must pick
  // up the reassigned remainder.
  shard::ShardOptions options;
  options.shards = 2;
  options.loopback_faults.resize(1);
  options.loopback_faults[0].fail_after_sends = 3;
  std::vector<core::ExamplePrediction> preds;
  const core::EvalSummary merged =
      shard::evaluate_sharded_inprocess(h.model, h.split, options, &preds);
  expect_oracle_equal(merged, oracle);
  ASSERT_EQ(preds.size(), h.split.size());
  for (const auto& pred : preds) {
    EXPECT_FALSE(pred.predicted_code.empty());
  }
}

TEST(FailureInjection, ShardWorkerTruncatedFrameTreatedAsDeath) {
  using namespace shard_failure;
  const auto& h = eval_harness();
  testutil::ScopedEnv wave("MPIRICAL_DECODE_WAVE", "2");
  const core::EvalSummary oracle = core::evaluate_model(h.model, h.split);

  // The fatal send is a RESULT record cut off after 11 bytes (a valid
  // header plus two payload bytes): the driver's parser must hold the
  // partial frame, see EOF, and treat it as death -- not parse garbage.
  shard::ShardOptions options;
  options.shards = 3;
  options.loopback_faults.resize(1);
  options.loopback_faults[0].fail_after_sends = 3;
  options.loopback_faults[0].truncate_bytes = 11;
  const core::EvalSummary merged =
      shard::evaluate_sharded_inprocess(h.model, h.split, options);
  expect_oracle_equal(merged, oracle);
}

TEST(FailureInjection, WedgedShardWorkerTimedOutByWatchdog) {
  using namespace shard_failure;
  const auto& h = eval_harness();
  testutil::ScopedEnv wave("MPIRICAL_DECODE_WAVE", "3");
  const core::EvalSummary oracle = core::evaluate_model(h.model, h.split);

  // A wedged worker: alive, transport open, but never speaks the protocol
  // and never closes. Without the watchdog the driver would wait on it
  // forever; with MPIRICAL_EVAL_SHARD_TIMEOUT_S it must declare the worker
  // dead, evaluate the chunks itself, and still merge oracle-equal.
  testutil::ScopedEnv watchdog("MPIRICAL_EVAL_SHARD_TIMEOUT_S", "1");
  auto [driver_end, worker_end] = shard::make_loopback_pair();
  std::thread wedged([endpoint = std::shared_ptr<shard::Transport>(
                          std::move(worker_end))] {
    // Hold the connection open until the driver abandons us.
    while (!endpoint->recv_some().empty()) {
    }
  });
  shard::ShardOptions options;
  options.shards = 1;
  std::vector<core::ExamplePrediction> preds;
  const core::EvalSummary merged = shard::run_driver(
      h.model, h.split, {driver_end.get()}, options, &preds);
  expect_oracle_equal(merged, oracle);
  ASSERT_EQ(preds.size(), h.split.size());
  driver_end->close();  // releases the wedged thread's recv
  wedged.join();
}

TEST(FailureInjection, AllShardWorkersDeadFallsBackInProcess) {
  using namespace shard_failure;
  const auto& h = eval_harness();
  testutil::ScopedEnv wave("MPIRICAL_DECODE_WAVE", "3");
  const core::EvalSummary oracle = core::evaluate_model(h.model, h.split);

  // Every worker dies almost immediately: the driver itself must evaluate
  // the leftover chunks so the merge is still total and oracle-equal.
  shard::ShardOptions options;
  options.shards = 2;
  options.loopback_faults.resize(2);
  options.loopback_faults[0].fail_after_sends = 2;
  options.loopback_faults[1].fail_after_sends = 3;
  std::vector<core::ExamplePrediction> preds;
  const core::EvalSummary merged =
      shard::evaluate_sharded_inprocess(h.model, h.split, options, &preds);
  expect_oracle_equal(merged, oracle);
  ASSERT_EQ(preds.size(), h.split.size());
}

// ---- the same fault matrix over TCP -----------------------------------------
//
// The loopback faults above are synthetic; these run the identical fault
// shapes over real 127.0.0.1 sockets -- the transport the cross-machine
// deployment actually uses -- and require the identical recovery: reassign,
// or evaluate in-process, always oracle-equal.

TEST(FailureInjection, TcpWorkerDyingMidResultFrameReassigned) {
  using namespace shard_failure;
  const auto& h = eval_harness();
  testutil::ScopedEnv wave("MPIRICAL_DECODE_WAVE", "2");  // 7 ex -> 4 chunks
  const core::EvalSummary oracle = core::evaluate_model(h.model, h.split);

  TcpFleet fleet(2);
  // Worker 0: requests a chunk, takes the grant, then emits HALF of a
  // result frame and half-closes -- a worker process dying mid-record on a
  // remote machine. The driver must hold the partial frame, classify the
  // EOF as death, and reassign the chunk.
  std::thread dying([&fleet] {
    shard::Transport& t = *fleet.worker_ends[0];
    shard::FrameParser parser;
    t.send(shard::encode_frame(shard::FrameType::kTaskRequest, ""));
    bool granted = false;
    while (!granted) {
      const std::string bytes = t.recv_some();
      if (bytes.empty()) break;
      parser.feed(bytes.data(), bytes.size());
      while (const auto frame = parser.next()) {
        if (frame->type == shard::FrameType::kTaskGrant) granted = true;
        if (frame->type == shard::FrameType::kDone) break;
      }
    }
    if (granted) {
      shard::ResultRecord record;  // never completes the wire trip
      const std::string frame = shard::encode_frame(
          shard::FrameType::kResult, shard::encode_result(record));
      t.send(frame.substr(0, frame.size() / 2));
    }
    t.close();
  });
  // Worker 1: a fully healthy protocol worker.
  std::thread healthy([&fleet, &h] {
    shard::run_worker(h.model, h.split, *fleet.worker_ends[1]);
  });

  shard::ShardOptions options;
  options.shards = 2;
  std::vector<core::ExamplePrediction> preds;
  const core::EvalSummary merged = shard::run_driver(
      h.model, h.split, fleet.driver_ptrs(), options, &preds);
  dying.join();
  healthy.join();
  expect_oracle_equal(merged, oracle);
  ASSERT_EQ(preds.size(), h.split.size());
}

TEST(FailureInjection, TcpGarbageSpeakingWorkerTreatedAsDead) {
  using namespace shard_failure;
  const auto& h = eval_harness();
  testutil::ScopedEnv wave("MPIRICAL_DECODE_WAVE", "2");
  const core::EvalSummary oracle = core::evaluate_model(h.model, h.split);

  TcpFleet fleet(2);
  // Worker 0 speaks bytes that are not the protocol at all (wrong magic);
  // the driver must cut it loose loudly-but-locally and let worker 1 carry
  // the whole split.
  std::thread babbling([&fleet] {
    shard::Transport& t = *fleet.worker_ends[0];
    t.send("MPRX not actually a frame header at all");
    while (!t.recv_some().empty()) {
    }
    t.close();
  });
  std::thread healthy([&fleet, &h] {
    shard::run_worker(h.model, h.split, *fleet.worker_ends[1]);
  });

  shard::ShardOptions options;
  options.shards = 2;
  const core::EvalSummary merged =
      shard::run_driver(h.model, h.split, fleet.driver_ptrs(), options);
  babbling.join();
  healthy.join();
  expect_oracle_equal(merged, oracle);
}

TEST(FailureInjection, WedgedTcpWorkerTimedOutByWatchdog) {
  using namespace shard_failure;
  const auto& h = eval_harness();
  testutil::ScopedEnv wave("MPIRICAL_DECODE_WAVE", "3");
  const core::EvalSummary oracle = core::evaluate_model(h.model, h.split);

  // Alive TCP connection, total protocol silence: only the watchdog can
  // classify this worker as gone.
  testutil::ScopedEnv watchdog("MPIRICAL_EVAL_SHARD_TIMEOUT_S", "1");
  TcpFleet fleet(1);
  std::thread wedged([&fleet] {
    while (!fleet.worker_ends[0]->recv_some().empty()) {
    }
  });
  shard::ShardOptions options;
  options.shards = 1;
  std::vector<core::ExamplePrediction> preds;
  const core::EvalSummary merged = shard::run_driver(
      h.model, h.split, fleet.driver_ptrs(), options, &preds);
  expect_oracle_equal(merged, oracle);
  ASSERT_EQ(preds.size(), h.split.size());
  fleet.driver_ends[0]->close();  // EOF releases the wedged thread
  wedged.join();
}

TEST(FailureInjection, AllTcpWorkersDeadFallsBackInProcess) {
  using namespace shard_failure;
  const auto& h = eval_harness();
  testutil::ScopedEnv wave("MPIRICAL_DECODE_WAVE", "3");
  const core::EvalSummary oracle = core::evaluate_model(h.model, h.split);

  TcpFleet fleet(2);
  // Both workers hang up without a word; the driver evaluates everything
  // itself.
  for (auto& end : fleet.worker_ends) end->close();
  shard::ShardOptions options;
  options.shards = 2;
  std::vector<core::ExamplePrediction> preds;
  const core::EvalSummary merged = shard::run_driver(
      h.model, h.split, fleet.driver_ptrs(), options, &preds);
  expect_oracle_equal(merged, oracle);
  ASSERT_EQ(preds.size(), h.split.size());
}

}  // namespace
}  // namespace mpirical
