// Cross-module property suites: invariants that must hold over the whole
// generator distribution, not just hand-picked cases. These tie together
// corpus generation, parsing, standardization, removal, alignment, the
// interpreter and the simulated MPI runtime.
#include <gtest/gtest.h>

#include <cmath>

#include "benchsuite/benchsuite.hpp"
#include "cast/printer.hpp"
#include "cinterp/interp.hpp"
#include "corpus/dataset.hpp"
#include "corpus/generator.hpp"
#include "corpus/removal.hpp"
#include "cparse/parser.hpp"
#include "metrics/metrics.hpp"
#include "mpisim/runner.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "toklib/vocab.hpp"
#include "xsbt/xsbt.hpp"
#include "testing.hpp"

namespace mpirical {
namespace {

// ---------------------------------------------------------------------------
// Pipeline invariants over random programs.
// ---------------------------------------------------------------------------

class PipelineProperty : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam()) * 104729 + 3};
};

TEST_P(PipelineProperty, InputTokensAreSubsequenceOfLabelTokens) {
  // Removal only deletes; therefore the stripped token stream must embed
  // into the label token stream in order. This is the property the tagger's
  // LCS alignment relies on.
  for (int i = 0; i < 8; ++i) {
    corpus::Example ex;
    const auto prog = corpus::generate_random_program(rng_);
    if (!corpus::make_example(prog.source, 320, ex)) continue;
    const auto input = tok::code_to_tokens(ex.input_code);
    const auto label = tok::code_to_tokens(ex.label_code);
    std::size_t j = 0;
    for (const auto& t : input) {
      while (j < label.size() && label[j] != t) ++j;
      ASSERT_LT(j, label.size())
          << "input token '" << t << "' not embeddable ("
          << corpus::family_name(prog.family) << ")";
      ++j;
    }
  }
}

TEST_P(PipelineProperty, RemovedCallCountMatchesTokenDelta) {
  // Every removed call removes at least its name token; the label stream is
  // strictly longer whenever ground truth is non-empty.
  for (int i = 0; i < 8; ++i) {
    corpus::Example ex;
    const auto prog = corpus::generate_random_program(rng_);
    if (!corpus::make_example(prog.source, 320, ex)) continue;
    const auto input = tok::code_to_tokens(ex.input_code);
    const auto label = tok::code_to_tokens(ex.label_code);
    if (ex.ground_truth.empty()) {
      EXPECT_EQ(input.size(), label.size());
    } else {
      EXPECT_GT(label.size(), input.size());
      // Each call contributes name + parens at minimum.
      EXPECT_GE(label.size() - input.size(), ex.ground_truth.size() * 3);
    }
  }
}

TEST_P(PipelineProperty, GroundTruthSortedByLine) {
  for (int i = 0; i < 8; ++i) {
    corpus::Example ex;
    const auto prog = corpus::generate_random_program(rng_);
    if (!corpus::make_example(prog.source, 320, ex)) continue;
    for (std::size_t c = 1; c < ex.ground_truth.size(); ++c) {
      EXPECT_LE(ex.ground_truth[c - 1].line, ex.ground_truth[c].line);
    }
  }
}

TEST_P(PipelineProperty, XsbtStableUnderReparse) {
  for (int i = 0; i < 6; ++i) {
    const auto prog = corpus::generate_random_program(rng_);
    const auto tree = parse::parse_translation_unit(prog.source);
    const std::string code = ast::print_code(*tree);
    const auto reparsed = parse::parse_translation_unit(code);
    EXPECT_EQ(xsbt::xsbt_string(*tree), xsbt::xsbt_string(*reparsed));
  }
}

TEST_P(PipelineProperty, PerfectPredictionScoresPerfectly) {
  // Feeding the label itself through call extraction + matching must yield
  // F1 = 1 -- the oracle of the whole metric pipeline.
  for (int i = 0; i < 6; ++i) {
    corpus::Example ex;
    const auto prog = corpus::generate_random_program(rng_);
    if (!corpus::make_example(prog.source, 320, ex)) continue;
    if (ex.ground_truth.empty()) continue;
    const auto tree = parse::parse_translation_unit(ex.label_code);
    const auto calls = ast::collect_mpi_calls(*tree);
    const auto counts = metrics::match_call_sites(calls, ex.ground_truth, 0);
    EXPECT_EQ(counts.f1(), 1.0) << corpus::family_name(prog.family);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Execution invariants: generated programs actually run and compute the
// mathematics they claim, at several world sizes.
// ---------------------------------------------------------------------------

class ExecutionProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExecutionProperty, PiRiemannProgramsComputePi) {
  MR_SEEDED_RNG(rng, static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  const std::string src =
      corpus::generate_program(corpus::Family::kPiRiemann, rng);
  mpisim::RunOptions opts;
  opts.num_ranks = 2 + GetParam() % 3;  // 2..4 ranks
  const auto result = mpisim::run_mpi_source(src, opts);
  ASSERT_TRUE(result.ok) << result.error << "\n" << src;
  EXPECT_TRUE(contains(result.rank_output[0], "3.14")) << src;
}

TEST_P(ExecutionProperty, TrapezoidProgramsComputeIntegral) {
  MR_SEEDED_RNG(rng, static_cast<std::uint64_t>(GetParam()) * 13 + 5);
  const std::string src =
      corpus::generate_program(corpus::Family::kTrapezoid, rng);
  mpisim::RunOptions opts;
  opts.num_ranks = 4;
  const auto result = mpisim::run_mpi_source(src, opts);
  ASSERT_TRUE(result.ok) << result.error << "\n" << src;
  // integral of x^2 + 1 over [0,4] = 25.333...
  EXPECT_TRUE(contains(result.merged_output(), "25.33")) << src;
}

TEST_P(ExecutionProperty, SerialUtilityDeterministic) {
  MR_SEEDED_RNG(rng, static_cast<std::uint64_t>(GetParam()) * 17 + 2);
  const std::string src =
      corpus::generate_program(corpus::Family::kSerialUtility, rng);
  const auto tree = parse::parse_translation_unit(src);
  interp::Interpreter a(*tree, nullptr);
  interp::Interpreter b(*tree, nullptr);
  a.run_main();
  b.run_main();
  EXPECT_EQ(a.output(), b.output());
  EXPECT_FALSE(a.output().empty());
}

TEST_P(ExecutionProperty, GeneratedMpiFamiliesRunCleanly) {
  // Communication-pattern families must neither deadlock nor fault across
  // random variants and world sizes.
  const corpus::Family families[] = {
      corpus::Family::kRingToken,     corpus::Family::kPingPong,
      corpus::Family::kMasterWorker,  corpus::Family::kPrefixScan,
      corpus::Family::kAllreduceNorm, corpus::Family::kHistogram,
  };
  MR_SEEDED_RNG(rng, static_cast<std::uint64_t>(GetParam()) * 23 + 11);
  for (const auto family : families) {
    const std::string src = corpus::generate_program(family, rng);
    mpisim::RunOptions opts;
    opts.num_ranks = 2 + GetParam() % 4;  // 2..5 ranks
    const auto result = mpisim::run_mpi_source(src, opts);
    EXPECT_TRUE(result.ok)
        << corpus::family_name(family) << ": " << result.error << "\n"
        << src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutionProperty, ::testing::Range(0, 5));

// ---------------------------------------------------------------------------
// Benchmark suite at different world sizes.
// ---------------------------------------------------------------------------

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, RankCountInvariantProgramsStillValidate) {
  const int ranks = GetParam();
  for (const char* name :
       {"Array Average", "Vector Dot Product", "Min-Max",
        "Matrix-Vector Multiplication", "Sum (Reduce & Gather)",
        "Pi Riemann Sum", "Pi Monte-Carlo", "Factorial",
        "Trapezoidal Rule (Integration)"}) {
    benchsuite::BenchmarkProgram prog = benchsuite::program_by_name(name);
    prog.ranks = ranks;
    const auto result = benchsuite::validate(prog, prog.source);
    EXPECT_TRUE(result.valid) << name << " at " << ranks << " ranks: "
                              << result.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep, ::testing::Values(2, 4, 8));

// ---------------------------------------------------------------------------
// Metric bounds over random inputs.
// ---------------------------------------------------------------------------

class MetricBounds : public ::testing::TestWithParam<int> {};

TEST_P(MetricBounds, AllSequenceMetricsStayInUnitInterval) {
  MR_SEEDED_RNG(rng, static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const std::vector<std::string> alphabet = {"a", "b", "c", "(", ")", ";"};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::string> cand;
    std::vector<std::string> ref;
    const int cl = static_cast<int>(rng.next_int(1, 12));
    const int rl = static_cast<int>(rng.next_int(1, 12));
    for (int i = 0; i < cl; ++i) cand.push_back(rng.pick(alphabet));
    for (int i = 0; i < rl; ++i) ref.push_back(rng.pick(alphabet));
    for (const double score :
         {metrics::bleu(cand, ref), metrics::meteor(cand, ref),
          metrics::rouge_l(cand, ref)}) {
      EXPECT_GE(score, 0.0);
      EXPECT_LE(score, 1.0 + 1e-9);
    }
    // Identity dominates any other candidate of the same length.
    EXPECT_GE(metrics::rouge_l(ref, ref), metrics::rouge_l(cand, ref));
  }
}

TEST_P(MetricBounds, MatchingIsSymmetricInCounts) {
  // Swapping prediction and truth swaps FP and FN but preserves TP.
  MR_SEEDED_RNG(rng, static_cast<std::uint64_t>(GetParam()) * 37 + 1);
  const std::vector<std::string> functions = {"MPI_Send", "MPI_Recv",
                                              "MPI_Bcast"};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ast::CallSite> a;
    std::vector<ast::CallSite> b;
    for (int i = 0; i < 5; ++i) {
      a.push_back({rng.pick(functions),
                   static_cast<int>(rng.next_int(1, 10))});
      b.push_back({rng.pick(functions),
                   static_cast<int>(rng.next_int(1, 10))});
    }
    const auto ab = metrics::match_call_sites(a, b, 1);
    const auto ba = metrics::match_call_sites(b, a, 1);
    EXPECT_EQ(ab.tp + ab.fp, a.size());
    EXPECT_EQ(ab.tp + ab.fn, b.size());
    EXPECT_EQ(ba.tp + ba.fp, b.size());
    EXPECT_EQ(ba.tp + ba.fn, a.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricBounds, ::testing::Range(0, 4));

}  // namespace
}  // namespace mpirical
