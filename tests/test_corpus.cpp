#include <gtest/gtest.h>

#include <set>

#include "cast/printer.hpp"
#include "corpus/corpus.hpp"
#include "corpus/dataset.hpp"
#include "corpus/generator.hpp"
#include "corpus/removal.hpp"
#include "corpus/stats.hpp"
#include "cparse/parser.hpp"
#include "mpidb/catalog.hpp"
#include "support/strings.hpp"
#include "testing.hpp"

namespace mpirical::corpus {
namespace {

// Every family must generate parseable programs across many seeds -- this is
// the corpus inclusion criterion holding by construction.
class FamilyGeneration : public ::testing::TestWithParam<Family> {};

TEST_P(FamilyGeneration, GeneratesParseableDistinctPrograms) {
  const Family family = GetParam();
  std::set<std::string> sources;
  for (int seed = 0; seed < 10; ++seed) {
    MR_SEEDED_RNG(rng, static_cast<std::uint64_t>(seed) * 1237 + 5);
    const std::string src = generate_program(family, rng);
    EXPECT_NO_THROW(parse::parse_translation_unit(src))
        << family_name(family) << " seed " << seed << "\n"
        << src;
    sources.insert(src);
  }
  // Randomization should produce at least a few distinct programs.
  EXPECT_GE(sources.size(), 3u) << family_name(family);
}

TEST_P(FamilyGeneration, MpiFamiliesContainCommonPrologue) {
  const Family family = GetParam();
  if (family == Family::kSerialUtility) return;
  MR_SEEDED_RNG(rng, 2024);
  const std::string src = generate_program(family, rng);
  EXPECT_TRUE(contains(src, "MPI_Init")) << family_name(family);
  EXPECT_TRUE(contains(src, "MPI_Finalize")) << family_name(family);
  EXPECT_TRUE(contains(src, "MPI_Comm_rank")) << family_name(family);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyGeneration,
                         ::testing::ValuesIn(all_families()),
                         [](const auto& info) {
                           return std::string(family_name(info.param));
                         });

TEST(Generator, SerialUtilityHasNoMpi) {
  for (int seed = 0; seed < 20; ++seed) {
    MR_SEEDED_RNG(rng, static_cast<std::uint64_t>(seed));
    EXPECT_FALSE(
        contains(generate_program(Family::kSerialUtility, rng), "MPI_"));
  }
}

TEST(Generator, SampleFamilyCoversMostFamilies) {
  MR_SEEDED_RNG(rng, 77);
  std::set<Family> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(sample_family(rng));
  EXPECT_GE(seen.size(), all_families().size() - 2);
}

TEST(Generator, CatalogKnowsEveryGeneratedRoutine) {
  MR_SEEDED_RNG(rng, 31337);
  for (int i = 0; i < 200; ++i) {
    const auto prog = generate_random_program(rng);
    const auto tree = parse::parse_translation_unit(prog.source);
    for (const auto& call : ast::collect_mpi_calls(*tree)) {
      EXPECT_TRUE(mpidb::is_known_routine(call.callee)) << call.callee;
    }
  }
}

TEST(Corpus, BuildIsDeterministicGivenSeed) {
  const CorpusConfig config{50, 123};
  const auto a = build_corpus(config);
  const auto b = build_corpus(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source);
    EXPECT_EQ(a[i].family, b[i].family);
  }
}

TEST(Corpus, DifferentSeedsDiffer) {
  const auto a = build_corpus(CorpusConfig{20, 1});
  const auto b = build_corpus(CorpusConfig{20, 2});
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].source == b[i].source) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Removal, StripsEveryMpiCall) {
  MR_SEEDED_RNG(rng, 4242);
  for (int i = 0; i < 50; ++i) {
    const auto prog = generate_random_program(rng);
    const auto tree = parse::parse_translation_unit(prog.source);
    const auto result = remove_mpi_calls(*tree);
    EXPECT_FALSE(contains_mpi_call(*result.stripped))
        << family_name(prog.family);
    // Every call in the original is recorded as removed.
    EXPECT_EQ(result.removed.size(),
              ast::collect_mpi_calls(*tree).size())
        << family_name(prog.family);
  }
}

TEST(Removal, StrippedProgramStillParses) {
  MR_SEEDED_RNG(rng, 555);
  for (int i = 0; i < 50; ++i) {
    const auto prog = generate_random_program(rng);
    const auto tree = parse::parse_translation_unit(prog.source);
    const auto result = remove_mpi_calls(*tree);
    const std::string stripped_code = ast::print_code(*result.stripped);
    EXPECT_NO_THROW(parse::parse_translation_unit(stripped_code))
        << stripped_code;
  }
}

TEST(Removal, NonMpiCodeUntouched) {
  const auto tree = parse::parse_translation_unit(
      "int main() { int x = f(1); printf(\"%d\", x); return 0; }");
  const auto result = remove_mpi_calls(*tree);
  EXPECT_TRUE(ast::structurally_equal(*tree, *result.stripped));
  EXPECT_TRUE(result.removed.empty());
}

TEST(Removal, AssignmentFromMpiCallDropped) {
  const auto tree = parse::parse_translation_unit(
      "int main() { int rc; rc = MPI_Init(&argc, &argv); return rc; }");
  const auto result = remove_mpi_calls(*tree);
  ASSERT_EQ(result.removed.size(), 1u);
  EXPECT_EQ(result.removed[0].callee, "MPI_Init");
  EXPECT_FALSE(contains(ast::print_code(*result.stripped), "MPI_Init"));
  // The declaration of rc survives.
  EXPECT_TRUE(contains(ast::print_code(*result.stripped), "int rc;"));
}

TEST(Removal, DeclarationInitializerDropped) {
  const auto tree = parse::parse_translation_unit(
      "int main() { double t0 = MPI_Wtime(); return 0; }");
  const auto result = remove_mpi_calls(*tree);
  ASSERT_EQ(result.removed.size(), 1u);
  const std::string code = ast::print_code(*result.stripped);
  EXPECT_TRUE(contains(code, "double t0;"));
  EXPECT_FALSE(contains(code, "MPI_Wtime"));
}

TEST(Removal, GroundTruthLinesMatchLabelCode) {
  MR_SEEDED_RNG(rng, 808);
  for (int i = 0; i < 30; ++i) {
    const auto prog = generate_random_program(rng);
    Example ex;
    if (!make_example(prog.source, 320, ex)) continue;
    // Re-derive calls from the label code; removed call lines must agree.
    const auto label_tree = parse::parse_translation_unit(ex.label_code);
    const auto label_calls = ast::collect_mpi_calls(*label_tree);
    ASSERT_EQ(label_calls.size(), ex.ground_truth.size());
    for (std::size_t c = 0; c < label_calls.size(); ++c) {
      EXPECT_EQ(label_calls[c].callee, ex.ground_truth[c].callee);
      EXPECT_EQ(label_calls[c].line, ex.ground_truth[c].line);
    }
  }
}

TEST(Dataset, MakeExampleRejectsUnparseable) {
  Example ex;
  EXPECT_FALSE(make_example("int main( {", 320, ex));
}

TEST(Dataset, MakeExampleRejectsTooLong) {
  MR_SEEDED_RNG(rng, 9);
  const std::string src = generate_program(Family::kCompositePipeline, rng);
  Example ex;
  EXPECT_FALSE(make_example(src, 10, ex));
}

TEST(Dataset, SplitRatios) {
  DatasetConfig config;
  config.corpus_size = 300;
  config.seed = 7;
  const Dataset ds = build_dataset(config);
  const std::size_t n = ds.example_count();
  EXPECT_GT(n, 100u);
  EXPECT_NEAR(static_cast<double>(ds.train.size()) / n, 0.8, 0.02);
  EXPECT_NEAR(static_cast<double>(ds.val.size()) / n, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(ds.test.size()) / n, 0.1, 0.02);
}

TEST(Dataset, InputsHaveNoMpiButLabelsDo) {
  DatasetConfig config;
  config.corpus_size = 60;
  const Dataset ds = build_dataset(config);
  int labels_with_mpi = 0;
  for (const auto& ex : ds.train) {
    EXPECT_FALSE(contains(ex.input_code, "MPI_Init"));
    if (contains(ex.label_code, "MPI_")) ++labels_with_mpi;
  }
  EXPECT_GT(labels_with_mpi, static_cast<int>(ds.train.size()) / 2);
}

TEST(Dataset, XsbtNonEmptyAndStructural) {
  DatasetConfig config;
  config.corpus_size = 30;
  const Dataset ds = build_dataset(config);
  ASSERT_FALSE(ds.train.empty());
  for (const auto& ex : ds.train) {
    EXPECT_FALSE(ex.input_xsbt.empty());
    EXPECT_TRUE(contains(ex.input_xsbt, "compound_statement"));
  }
}

TEST(Stats, BucketsSumToParsedFiles) {
  const auto corpus = build_corpus(CorpusConfig{400, 21});
  const auto stats = compute_stats(corpus);
  EXPECT_EQ(stats.len_le_10 + stats.len_11_50 + stats.len_51_99 +
                stats.len_ge_100 + stats.parse_failures,
            corpus.size());
  EXPECT_EQ(stats.parse_failures, 0u);
}

TEST(Stats, LengthDistributionShapeMatchesTableIa) {
  // Paper Table Ia: the 11-50 bucket dominates; >=100 is a meaningful tail.
  const auto corpus = build_corpus(CorpusConfig{2000, 3});
  const auto stats = compute_stats(corpus);
  EXPECT_GT(stats.len_11_50, stats.len_le_10);
  EXPECT_GT(stats.len_11_50, stats.len_51_99);
  EXPECT_GT(stats.len_51_99, 0u);
  EXPECT_GT(stats.len_ge_100, 0u);
}

TEST(Stats, CommonCoreDominatesFunctionCounts) {
  const auto corpus = build_corpus(CorpusConfig{1500, 11});
  const auto stats = compute_stats(corpus);
  const auto sorted = sorted_function_counts(stats);
  ASSERT_GE(sorted.size(), 10u);
  // The top entries should be dominated by the MPI Common Core (Table Ib).
  int core_in_top6 = 0;
  for (int i = 0; i < 6; ++i) {
    if (mpidb::is_common_core(sorted[static_cast<std::size_t>(i)].first)) {
      ++core_in_top6;
    }
  }
  EXPECT_GE(core_in_top6, 4);
  // Init / Finalize / Comm_rank / Comm_size appear in nearly every MPI file.
  EXPECT_GT(stats.function_file_counts.at("MPI_Init"),
            corpus.size() * 8 / 10);
}

TEST(Stats, RatioHistogramMassAboveHalf) {
  // Fig. 3: most programs spend more than half their lines inside the
  // Init..Finalize span.
  const auto corpus = build_corpus(CorpusConfig{1000, 13});
  const auto stats = compute_stats(corpus);
  std::size_t below = 0;
  std::size_t above = 0;
  for (std::size_t bin = 0; bin < CorpusStats::kRatioBins; ++bin) {
    if (bin < CorpusStats::kRatioBins / 2) {
      below += stats.ratio_histogram[bin];
    } else {
      above += stats.ratio_histogram[bin];
    }
  }
  EXPECT_GT(above, below * 3);
  EXPECT_GT(stats.files_with_init_and_finalize, corpus.size() * 7 / 10);
}

}  // namespace
}  // namespace mpirical::corpus
