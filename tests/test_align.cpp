#include <gtest/gtest.h>

#include "core/align.hpp"
#include "corpus/dataset.hpp"
#include "corpus/generator.hpp"
#include "metrics/metrics.hpp"
#include "support/rng.hpp"
#include "testing.hpp"

namespace mpirical::core {
namespace {

TEST(Align, SlotsToCallSitesReplaysInsertions) {
  std::map<int, std::vector<std::string>> inserts;
  inserts[2] = {"MPI_Init"};
  inserts[5] = {"MPI_Send", "MPI_Recv"};
  const auto sites = slots_to_call_sites(inserts);
  ASSERT_EQ(sites.size(), 3u);
  EXPECT_EQ(sites[0].callee, "MPI_Init");
  EXPECT_EQ(sites[0].line, 3);  // after input line 2
  EXPECT_EQ(sites[1].line, 7);  // after line 5, shifted by 1 earlier insert
  EXPECT_EQ(sites[2].line, 8);
}

TEST(Align, EmptySlotsYieldNothing) {
  EXPECT_TRUE(slots_to_call_sites({}).empty());
}

// Core property: ground truth -> slots -> call sites must reconstruct the
// ground truth (same functions, lines within the paper's one-line tolerance).
TEST(Align, RoundTripReconstructsGroundTruth) {
  MR_SEEDED_RNG(rng, 2718);
  int checked = 0;
  for (int i = 0; i < 60 && checked < 25; ++i) {
    const auto prog = corpus::generate_random_program(rng);
    corpus::Example ex;
    if (!corpus::make_example(prog.source, 320, ex)) continue;
    if (ex.ground_truth.empty()) continue;
    ++checked;

    const SlotLabels slots = compute_insertion_slots(ex);
    const auto reconstructed = slots_to_call_sites(slots.inserts);
    const auto counts =
        metrics::match_call_sites(reconstructed, ex.ground_truth, 1);
    EXPECT_EQ(counts.fn, 0u) << corpus::family_name(prog.family);
    EXPECT_EQ(counts.fp, 0u) << corpus::family_name(prog.family);
  }
  EXPECT_GE(checked, 20);
}

TEST(Align, SlotCountMatchesInputLines) {
  MR_SEEDED_RNG(rng, 31);
  corpus::Example ex;
  bool found = false;
  for (int i = 0; i < 20 && !found; ++i) {
    const auto prog = corpus::generate_random_program(rng);
    found = corpus::make_example(prog.source, 320, ex);
  }
  ASSERT_TRUE(found);
  const SlotLabels slots = compute_insertion_slots(ex);
  int lines = 1;
  for (char c : ex.input_code) {
    if (c == '\n') ++lines;
  }
  // input_code ends with a newline; the final empty segment is not a line.
  EXPECT_EQ(slots.num_input_lines, lines - 1);
}

}  // namespace
}  // namespace mpirical::core
