#include <gtest/gtest.h>

#include "cast/node.hpp"
#include "cast/printer.hpp"
#include "corpus/generator.hpp"
#include "cparse/parser.hpp"
#include "support/check.hpp"
#include "testing.hpp"

namespace mpirical {
namespace {

using ast::Node;
using ast::NodeKind;
using ast::NodePtr;

NodePtr parse(const std::string& src) {
  return parse::parse_translation_unit(src);
}
NodePtr parse_expr(const std::string& src) {
  return parse::parse_expression_string(src);
}

TEST(Parser, EmptyTranslationUnit) {
  const auto tu = parse("");
  EXPECT_EQ(tu->kind, NodeKind::kTranslationUnit);
  EXPECT_EQ(tu->child_count(), 0u);
}

TEST(Parser, DirectivePassthrough) {
  const auto tu = parse("#include <mpi.h>\n#define N 100\n");
  ASSERT_EQ(tu->child_count(), 2u);
  EXPECT_EQ(tu->child(0)->kind, NodeKind::kPreprocDirective);
  EXPECT_EQ(tu->child(1)->text, "#define N 100");
}

TEST(Parser, SimpleFunction) {
  const auto tu = parse("int main(void) { return 0; }");
  ASSERT_EQ(tu->child_count(), 1u);
  const Node& fn = *tu->child(0);
  EXPECT_EQ(fn.kind, NodeKind::kFunctionDefinition);
  EXPECT_EQ(fn.text, "main");
  EXPECT_EQ(fn.child(2)->child_count(), 0u);  // (void) params
}

TEST(Parser, FunctionParams) {
  const auto tu = parse("double f(double x, int *p, char **argv) { return x; }");
  const Node& params = *tu->child(0)->child(2);
  ASSERT_EQ(params.child_count(), 3u);
  EXPECT_EQ(params.child(0)->child(0)->text, "double");
  EXPECT_EQ(params.child(1)->child(1)->aux, 1);  // int *p
  EXPECT_EQ(params.child(2)->child(1)->aux, 2);  // char **argv
}

TEST(Parser, DeclarationWithInitializers) {
  const auto tu = parse("int main() { int a = 1, b, c = 2 + 3; return a; }");
  const Node& body = *tu->child(0)->child(3);
  const Node& decl = *body.child(0);
  EXPECT_EQ(decl.kind, NodeKind::kDeclaration);
  EXPECT_EQ(decl.child_count(), 4u);  // type + 3 declarators
  EXPECT_EQ(decl.child(1)->child_count(), 2u);  // a = 1
  EXPECT_EQ(decl.child(2)->child_count(), 1u);  // b
}

TEST(Parser, ArrayDeclaration) {
  const auto tu = parse("int main() { double arr[100]; int m[4][5]; return 0; }");
  const Node& body = *tu->child(0)->child(3);
  const Node& d1 = *body.child(0)->child(1)->child(0);
  ASSERT_EQ(d1.child_count(), 1u);
  EXPECT_EQ(d1.child(0)->text, "100");
  const Node& d2 = *body.child(1)->child(1)->child(0);
  EXPECT_EQ(d2.child_count(), 2u);
}

TEST(Parser, TypedefNamesAsTypes) {
  const auto tu = parse("int main() { MPI_Status status; size_t n = 3; return 0; }");
  const Node& body = *tu->child(0)->child(3);
  EXPECT_EQ(body.child(0)->child(0)->text, "MPI_Status");
  EXPECT_EQ(body.child(1)->child(0)->text, "size_t");
  EXPECT_TRUE(parse::is_typedef_name("MPI_Comm"));
  EXPECT_FALSE(parse::is_typedef_name("MPI_Send"));
}

TEST(Parser, QualifiedTypes) {
  const auto tu = parse("int main() { unsigned long long x = 1; const double y = 2.0; return 0; }");
  const Node& body = *tu->child(0)->child(3);
  EXPECT_EQ(body.child(0)->child(0)->text, "unsigned long long");
  EXPECT_EQ(body.child(1)->child(0)->text, "const double");
}

TEST(Parser, PrecedenceMulOverAdd) {
  const auto e = parse_expr("1 + 2 * 3");
  EXPECT_EQ(e->kind, NodeKind::kBinaryExpression);
  EXPECT_EQ(e->text, "+");
  EXPECT_EQ(e->child(1)->text, "*");
}

TEST(Parser, LeftAssociativity) {
  const auto e = parse_expr("10 - 4 - 3");
  EXPECT_EQ(e->text, "-");
  EXPECT_EQ(e->child(0)->text, "-");  // (10-4)-3
  EXPECT_EQ(e->child(1)->text, "3");
}

TEST(Parser, AssignmentRightAssociative) {
  const auto e = parse_expr("a = b = 3");
  EXPECT_EQ(e->kind, NodeKind::kAssignmentExpression);
  EXPECT_EQ(e->child(1)->kind, NodeKind::kAssignmentExpression);
}

TEST(Parser, ComparisonChainsWithLogical) {
  const auto e = parse_expr("a < b && c >= d || !e");
  EXPECT_EQ(e->text, "||");
  EXPECT_EQ(e->child(0)->text, "&&");
  EXPECT_EQ(e->child(1)->kind, NodeKind::kUnaryExpression);
}

TEST(Parser, TernaryExpression) {
  const auto e = parse_expr("a ? b : c ? d : e");
  EXPECT_EQ(e->kind, NodeKind::kConditionalExpression);
  EXPECT_EQ(e->child(2)->kind, NodeKind::kConditionalExpression);
}

TEST(Parser, CastVsParenthesized) {
  const auto cast = parse_expr("(double)n");
  EXPECT_EQ(cast->kind, NodeKind::kCastExpression);
  EXPECT_EQ(cast->text, "double");
  const auto paren = parse_expr("(n)");
  EXPECT_EQ(paren->kind, NodeKind::kParenthesizedExpression);
}

TEST(Parser, PointerCast) {
  const auto e = parse_expr("(double *)malloc(n * sizeof(double))");
  EXPECT_EQ(e->kind, NodeKind::kCastExpression);
  EXPECT_EQ(e->aux, 1);
  EXPECT_EQ(e->child(0)->kind, NodeKind::kCallExpression);
}

TEST(Parser, SizeofTypeAndExpr) {
  const auto t = parse_expr("sizeof(double)");
  EXPECT_EQ(t->kind, NodeKind::kSizeofExpression);
  EXPECT_EQ(t->text, "double");
  EXPECT_EQ(t->child_count(), 0u);
  const auto x = parse_expr("sizeof(x)");
  EXPECT_EQ(x->child_count(), 1u);
}

TEST(Parser, CallWithArguments) {
  const auto e = parse_expr("MPI_Send(&buf, 1, MPI_INT, 1, 0, MPI_COMM_WORLD)");
  EXPECT_EQ(e->kind, NodeKind::kCallExpression);
  EXPECT_EQ(e->text, "MPI_Send");
  EXPECT_EQ(e->child_count(), 6u);
  EXPECT_EQ(e->child(0)->kind, NodeKind::kPointerExpression);
}

TEST(Parser, PostfixChain) {
  const auto e = parse_expr("a[1][2]");
  EXPECT_EQ(e->kind, NodeKind::kSubscriptExpression);
  EXPECT_EQ(e->child(0)->kind, NodeKind::kSubscriptExpression);
}

TEST(Parser, FieldAccess) {
  const auto dot = parse_expr("status.MPI_SOURCE");
  EXPECT_EQ(dot->kind, NodeKind::kFieldExpression);
  EXPECT_EQ(dot->aux, 0);
  EXPECT_EQ(dot->text, "MPI_SOURCE");
  const auto arrow = parse_expr("p->MPI_TAG");
  EXPECT_EQ(arrow->aux, 1);
}

TEST(Parser, UpdateExpressions) {
  const auto pre = parse_expr("++x");
  EXPECT_EQ(pre->aux, 0);
  const auto post = parse_expr("x++");
  EXPECT_EQ(post->aux, 1);
}

TEST(Parser, IfElseChain) {
  const auto tu = parse(
      "int main() { if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; } "
      "return x; }");
  const Node& if_stmt = *tu->child(0)->child(3)->child(0);
  EXPECT_EQ(if_stmt.kind, NodeKind::kIfStatement);
  ASSERT_EQ(if_stmt.child_count(), 3u);
  // Unbraced `else if` is normalized into a braced block holding the if.
  ASSERT_EQ(if_stmt.child(2)->kind, NodeKind::kCompoundStatement);
  EXPECT_EQ(if_stmt.child(2)->child(0)->kind, NodeKind::kIfStatement);
}

TEST(Parser, ForVariants) {
  const auto tu = parse(
      "int main() { for (int i = 0; i < 10; i++) { } for (;;) { break; } "
      "for (i = 0, j = 1; i < j; i++, j--) { } return 0; }");
  const Node& body = *tu->child(0)->child(3);
  EXPECT_EQ(body.child(0)->child(0)->kind, NodeKind::kDeclaration);
  EXPECT_EQ(body.child(1)->child(0)->kind, NodeKind::kEmptyExpr);
  EXPECT_EQ(body.child(2)->child(2)->kind, NodeKind::kCommaExpression);
}

TEST(Parser, WhileAndDoWhile) {
  const auto tu = parse(
      "int main() { while (x > 0) { x--; } do { x++; } while (x < 5); "
      "return 0; }");
  const Node& body = *tu->child(0)->child(3);
  EXPECT_EQ(body.child(0)->kind, NodeKind::kWhileStatement);
  EXPECT_EQ(body.child(1)->kind, NodeKind::kDoStatement);
}

TEST(Parser, SwitchCaseDefault) {
  const auto tu = parse(
      "int main() { switch (x) { case 1: y = 1; break; case 2: y = 2; break; "
      "default: y = 0; } return y; }");
  const Node& sw = *tu->child(0)->child(3)->child(0);
  EXPECT_EQ(sw.kind, NodeKind::kSwitchStatement);
  EXPECT_EQ(sw.child(1)->child_count(), 3u);
  EXPECT_EQ(sw.child(1)->child(2)->text, "default");
}

TEST(Parser, UnbracedBodiesParse) {
  const auto tu = parse("int main() { if (x) y = 1; else y = 2; while (a) b++; return 0; }");
  EXPECT_EQ(tu->child(0)->child(3)->child_count(), 3u);
}

TEST(Parser, ErrorOnMissingSemicolon) {
  EXPECT_THROW(parse("int main() { int x = 1 return x; }"), Error);
}

TEST(Parser, ErrorOnUnbalancedBraces) {
  EXPECT_THROW(parse("int main() { return 0;"), Error);
}

TEST(Parser, ErrorOnPrototype) {
  EXPECT_THROW(parse("int f(int x);"), Error);
}

TEST(Parser, ErrorMentionsLine) {
  try {
    parse("int main() {\n  int x = ;\n}");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, LineNumbersRecorded) {
  const auto tu = parse("#include <mpi.h>\nint main() {\n    int x = 1;\n    return x;\n}\n");
  const Node& fn = *tu->child(1);
  EXPECT_EQ(fn.line, 2);
  EXPECT_EQ(fn.child(3)->child(0)->line, 3);
  EXPECT_EQ(fn.child(3)->child(1)->line, 4);
}

// Round-trip property: print(parse(x)) is a fixed point over the whole
// generator corpus.
class RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RoundTrip, PrintParsePrintIsFixedPoint) {
  MR_SEEDED_RNG(rng, static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int i = 0; i < 12; ++i) {
    const auto prog = corpus::generate_random_program(rng);
    const auto tree = parse(prog.source);
    const std::string once = ast::print_code(*tree);
    const auto tree2 = parse(once);
    EXPECT_TRUE(ast::structurally_equal(*tree, *tree2))
        << corpus::family_name(prog.family);
    const std::string twice = ast::print_code(*tree2);
    EXPECT_EQ(once, twice) << corpus::family_name(prog.family);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip, ::testing::Range(0, 8));

}  // namespace
}  // namespace mpirical
