// Integration tests for the MPI-RICAL core: these train tiny models, so they
// are the slowest tests in the suite (seconds, not minutes).
#include <gtest/gtest.h>

#include "core/evaluate.hpp"
#include "core/model.hpp"
#include "core/tagger.hpp"
#include "corpus/dataset.hpp"
#include "support/strings.hpp"

namespace mpirical::core {
namespace {

ModelConfig tiny_model_config() {
  ModelConfig cfg;
  cfg.d_model = 32;
  cfg.heads = 2;
  cfg.ffn_dim = 64;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.dropout = 0.0f;
  cfg.max_src_tokens = 256;
  cfg.max_tgt_tokens = 200;
  cfg.batch_size = 8;
  cfg.epochs = 2;
  cfg.lr = 1e-3f;
  cfg.warmup_steps = 20;
  return cfg;
}

corpus::Dataset tiny_dataset() {
  // The corpus is composite-heavy (long programs), so a 180-token filter
  // keeps roughly a quarter of it; 500 programs yield ~120 fast examples.
  corpus::DatasetConfig dcfg;
  dcfg.corpus_size = 500;
  dcfg.seed = 77;
  dcfg.max_tokens = 180;
  return corpus::build_dataset(dcfg);
}

TEST(MpiRical, CreateBuildsVocabCoveringCatalog) {
  const auto dataset = tiny_dataset();
  const MpiRical model = MpiRical::create(dataset, tiny_model_config());
  EXPECT_TRUE(model.vocab().contains("MPI_Init"));
  EXPECT_TRUE(model.vocab().contains("MPI_Allreduce"));
  EXPECT_TRUE(model.vocab().contains("MPI_Cart_create"));  // from catalog
  EXPECT_GT(model.vocab().size(), 100u);
}

TEST(MpiRical, EncodeSourceAppendsXsbtAfterSep) {
  const auto dataset = tiny_dataset();
  ModelConfig cfg = tiny_model_config();
  const MpiRical model = MpiRical::create(dataset, cfg);
  ASSERT_FALSE(dataset.train.empty());
  const auto& ex = dataset.train.front();
  const auto src = model.encode_source(ex.input_code, ex.input_xsbt);
  EXPECT_LE(src.size(), static_cast<std::size_t>(cfg.max_src_tokens));
  bool has_sep = false;
  for (const auto id : src) {
    if (id == tok::kSep) has_sep = true;
  }
  EXPECT_TRUE(has_sep);
}

TEST(MpiRical, TrainingReducesLoss) {
  const auto dataset = tiny_dataset();
  MpiRical model = MpiRical::create(dataset, tiny_model_config());
  const auto logs = model.train(dataset);
  ASSERT_EQ(logs.size(), 2u);
  EXPECT_LT(logs.back().train_loss, logs.front().train_loss);
  EXPECT_GT(logs.front().train_loss, 0.0);
}

TEST(MpiRical, TranslateProducesTokens) {
  const auto dataset = tiny_dataset();
  MpiRical model = MpiRical::create(dataset, tiny_model_config());
  model.train(dataset);
  const auto& ex = dataset.test.empty() ? dataset.train.front()
                                        : dataset.test.front();
  const std::string predicted = model.translate(ex.input_code, ex.input_xsbt);
  EXPECT_FALSE(predicted.empty());
}

TEST(MpiRical, SerializeRoundTripPreservesPredictions) {
  const auto dataset = tiny_dataset();
  MpiRical model = MpiRical::create(dataset, tiny_model_config());
  model.train(dataset);
  const std::string blob = model.serialize();
  const MpiRical loaded = MpiRical::deserialize(blob);
  const auto& ex = dataset.train.front();
  EXPECT_EQ(model.translate(ex.input_code, ex.input_xsbt),
            loaded.translate(ex.input_code, ex.input_xsbt));
  EXPECT_EQ(loaded.vocab().size(), model.vocab().size());
}

TEST(MpiRical, SuggestRejectsUnparseableInput) {
  const auto dataset = tiny_dataset();
  const MpiRical model = MpiRical::create(dataset, tiny_model_config());
  EXPECT_THROW(model.suggest("int main( {"), Error);
}

TEST(MpiRical, EvaluateSummaryAggregates) {
  const auto dataset = tiny_dataset();
  MpiRical model = MpiRical::create(dataset, tiny_model_config());
  model.train(dataset);
  std::vector<corpus::Example> subset(
      dataset.test.begin(),
      dataset.test.begin() +
          static_cast<std::ptrdiff_t>(std::min<std::size_t>(
              4, dataset.test.size())));
  ASSERT_FALSE(subset.empty());
  std::vector<ExamplePrediction> predictions;
  const EvalSummary s = evaluate_model(model, subset, 1, 1, &predictions);
  EXPECT_EQ(s.examples, subset.size());
  EXPECT_EQ(predictions.size(), subset.size());
  EXPECT_GE(s.bleu, 0.0);
  EXPECT_LE(s.bleu, 1.0);
  EXPECT_GE(s.rouge_l, 0.0);
  EXPECT_LE(s.rouge_l, 1.0);
}

TEST(Tagger, LabelSpaceBuiltFromTraining) {
  const auto dataset = tiny_dataset();
  TaggerConfig cfg;
  cfg.epochs = 1;
  cfg.d_model = 32;
  cfg.heads = 2;
  cfg.ffn_dim = 64;
  cfg.encoder_layers = 1;
  cfg.max_src_tokens = 208;
  const Tagger tagger = Tagger::create(dataset, cfg);
  EXPECT_GT(tagger.label_count(), 2u);  // none + several compounds
}

TEST(Tagger, TrainingImprovesSlotAccuracy) {
  const auto dataset = tiny_dataset();
  TaggerConfig cfg;
  cfg.epochs = 6;
  cfg.d_model = 32;
  cfg.heads = 2;
  cfg.ffn_dim = 64;
  cfg.encoder_layers = 1;
  cfg.max_src_tokens = 208;
  cfg.warmup_steps = 20;  // the tiny dataset only has a few steps per epoch
  cfg.lr = 2e-3f;
  Tagger tagger = Tagger::create(dataset, cfg);
  const auto logs = tagger.train(dataset);
  ASSERT_EQ(logs.size(), 6u);
  EXPECT_LT(logs.back().train_loss, logs.front().train_loss);
  // Most slots are "none", so a trained tagger must beat the degenerate
  // all-wrong regime by a wide margin.
  EXPECT_GT(logs.back().val_slot_accuracy, 0.5);
}

TEST(Tagger, PredictReturnsOrderedCallSites) {
  const auto dataset = tiny_dataset();
  TaggerConfig cfg;
  cfg.epochs = 2;
  cfg.d_model = 32;
  cfg.heads = 2;
  cfg.ffn_dim = 64;
  cfg.encoder_layers = 1;
  cfg.max_src_tokens = 208;
  Tagger tagger = Tagger::create(dataset, cfg);
  tagger.train(dataset);
  const auto& ex = dataset.train.front();
  const auto calls = tagger.predict(ex.input_code);
  for (std::size_t i = 1; i < calls.size(); ++i) {
    EXPECT_LE(calls[i - 1].line, calls[i].line);
  }
}

}  // namespace
}  // namespace mpirical::core
