// Packed-weight cache differential suite: decoding through the
// process-lifetime shared PackedModel (the default) must be BIT-IDENTICAL
// to the MPIRICAL_PACK_CACHE=0 fallback, which re-packs per call (encoder)
// and per stream (decoder) -- the exact legacy code paths.
//
//  * greedy and beam-4 over wave sizes {1, 8, 32}, f32 and int8: predicted
//    code strings and merged EvalSummary doubles match bit-for-bit;
//  * sharded evaluation at {1, 2, 3} shards merges bit-identically whether
//    each worker shares one cache or packs per stream;
//  * serve-style randomized arrivals through TranslateStream (requests
//    joining a running wave in shuffled bursts) reproduce the cache-off
//    translate_batch oracle token-for-token;
//  * a ThreadPool stress: N concurrent streams race the lazy packing of ONE
//    shared PackedModel (per-panel std::call_once) and every decode matches
//    the single-threaded reference;
//  * cache identity mechanics: same instance per (model, mode), distinct
//    per mode, detached on copy, dropped by invalidate_pack_cache().
//
// Standalone binary (like test_quant_equivalence): it builds models, which
// is the slow part of the main test binary's link-iterate loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluate.hpp"
#include "core/model.hpp"
#include "core/stream.hpp"
#include "corpus/dataset.hpp"
#include "nn/infer.hpp"
#include "nn/packed_model.hpp"
#include "shard/eval.hpp"
#include "testing.hpp"

namespace mpirical {
namespace {

using testutil::double_bits;
using testutil::ScopedEnv;

/// One tiny untrained model + dataset shared by every test: decode is
/// deterministic for fixed weights, and random weights exercise the full
/// pack/decode path without paying for training.
struct Harness {
  corpus::Dataset dataset;
  core::MpiRical model;
  std::vector<corpus::Example> examples;
  std::vector<core::MpiRical::TranslateRequest> inputs;
};

const Harness& harness() {
  static const Harness* h = [] {
    corpus::DatasetConfig dcfg;
    dcfg.corpus_size = 300;
    dcfg.seed = 211;
    dcfg.max_tokens = 170;

    core::ModelConfig mcfg;
    mcfg.d_model = 32;
    mcfg.heads = 2;
    mcfg.ffn_dim = 64;
    mcfg.encoder_layers = 1;
    mcfg.decoder_layers = 1;
    mcfg.dropout = 0.0f;
    mcfg.max_src_tokens = 256;
    mcfg.max_tgt_tokens = 36;
    mcfg.seed = 3119;

    auto* built = new Harness;
    built->dataset = corpus::build_dataset(dcfg);
    built->model = core::MpiRical::create(built->dataset, mcfg);
    built->examples = built->dataset.test;
    for (const auto& ex : built->dataset.train) {
      if (built->examples.size() >= 12) break;
      built->examples.push_back(ex);
    }
    for (const auto& ex : built->examples) {
      built->inputs.push_back({ex.input_code, ex.input_xsbt});
    }
    return built;
  }();
  return *h;
}

void expect_identical(const core::EvalSummary& a, const core::EvalSummary& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.examples, b.examples);
  EXPECT_TRUE(a.m_counts == b.m_counts);
  EXPECT_TRUE(a.mcc_counts == b.mcc_counts);
  EXPECT_EQ(double_bits(a.bleu), double_bits(b.bleu));
  EXPECT_EQ(double_bits(a.meteor), double_bits(b.meteor));
  EXPECT_EQ(double_bits(a.rouge_l), double_bits(b.rouge_l));
  EXPECT_EQ(double_bits(a.acc), double_bits(b.acc));
}

// ---- cache-on vs cache-off, wave sizes x modes x beams ----------------------

TEST(PackCacheEquivalence, BitIdenticalAcrossWaveSizesModesAndBeams) {
  ScopedEnv no_shards("MPIRICAL_EVAL_SHARDS", nullptr);
  const auto& split = harness().examples;
  for (const bool int8_mode : {false, true}) {
    ScopedEnv i8("MPIRICAL_DECODE_INT8", int8_mode ? "1" : nullptr);
    for (const int beam : {1, 4}) {
      for (const char* w : {"1", "8", "32"}) {
        ScopedEnv wave("MPIRICAL_DECODE_WAVE", w);
        const std::string what = std::string("int8=") +
                                 (int8_mode ? "1" : "0") + " beam=" +
                                 std::to_string(beam) + " wave=" + w;
        std::vector<core::ExamplePrediction> off_preds, on_preds;
        core::EvalSummary off, on;
        {
          ScopedEnv cache("MPIRICAL_PACK_CACHE", "0");
          off = core::evaluate_model(harness().model, split, beam, 1,
                                     &off_preds);
        }
        {
          ScopedEnv cache("MPIRICAL_PACK_CACHE", nullptr);
          on = core::evaluate_model(harness().model, split, beam, 1,
                                    &on_preds);
        }
        expect_identical(on, off, what);
        ASSERT_EQ(on_preds.size(), off_preds.size()) << what;
        for (std::size_t i = 0; i < on_preds.size(); ++i) {
          EXPECT_EQ(on_preds[i].predicted_code, off_preds[i].predicted_code)
              << what << " example " << i;
        }
      }
    }
  }
}

// ---- sharded merges ---------------------------------------------------------

TEST(PackCacheEquivalence, ShardedEvalBitIdenticalCacheOnVsOff) {
  const auto& split = harness().examples;
  ScopedEnv wave("MPIRICAL_DECODE_WAVE", "3");
  ScopedEnv no_shards("MPIRICAL_EVAL_SHARDS", nullptr);
  for (const bool int8_mode : {false, true}) {
    ScopedEnv i8("MPIRICAL_DECODE_INT8", int8_mode ? "1" : nullptr);
    for (const std::size_t shards : {1u, 2u, 3u}) {
      shard::ShardOptions options;
      options.shards = shards;
      options.beam_width = 4;
      const std::string what = std::string("int8=") +
                               (int8_mode ? "1" : "0") +
                               " shards=" + std::to_string(shards);
      std::vector<core::ExamplePrediction> off_preds, on_preds;
      core::EvalSummary off, on;
      {
        ScopedEnv cache("MPIRICAL_PACK_CACHE", "0");
        off = shard::evaluate_sharded_inprocess(harness().model, split,
                                                options, &off_preds);
      }
      {
        ScopedEnv cache("MPIRICAL_PACK_CACHE", nullptr);
        on = shard::evaluate_sharded_inprocess(harness().model, split,
                                               options, &on_preds);
      }
      expect_identical(on, off, what);
      ASSERT_EQ(on_preds.size(), off_preds.size()) << what;
      for (std::size_t i = 0; i < on_preds.size(); ++i) {
        EXPECT_EQ(on_preds[i].predicted_code, off_preds[i].predicted_code)
            << what << " example " << i;
      }
    }
  }
}

// ---- serve-style randomized arrivals ----------------------------------------

// Requests join a RUNNING TranslateStream in seeded-random bursts at random
// step boundaries (the serve daemon's admission pattern). Every delivered
// output must match the cache-off translate_batch oracle: the shared cached
// panels are the same bits as per-stream packs, and rowstable GEMMs keep
// each request independent of its wave-mates.
TEST(PackCacheEquivalence, ServeRandomizedArrivalsMatchCacheOffOracle) {
  MR_SEEDED_RNG(rng, 0x9acc);
  const auto& inputs = harness().inputs;
  std::vector<std::string> expected;
  {
    ScopedEnv cache("MPIRICAL_PACK_CACHE", "0");
    expected = harness().model.translate_batch(inputs, /*beam_width=*/2);
  }

  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    std::vector<std::size_t> order(inputs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);

    core::TranslateStream stream(harness().model, /*beam_width=*/2);
    std::map<core::TranslateStream::TicketId, std::size_t> slot;
    std::map<std::size_t, std::string> outputs;
    std::size_t cursor = 0;
    while (outputs.size() < inputs.size()) {
      if (cursor < order.size()) {
        // Admit a random-sized burst (possibly empty) mid-stream.
        const std::size_t burst = static_cast<std::size_t>(
            rng.next_below(order.size() - cursor + 1));
        if (burst > 0) {
          std::vector<core::MpiRical::TranslateRequest> group;
          for (std::size_t i = 0; i < burst; ++i) {
            group.push_back(inputs[order[cursor + i]]);
          }
          const auto ids = stream.submit(group);
          for (std::size_t i = 0; i < ids.size(); ++i) {
            slot[ids[i]] = order[cursor + i];
          }
          cursor += burst;
        }
      }
      for (auto& fin : stream.step()) {
        outputs[slot.at(fin.id)] = std::move(fin.output_code);
      }
    }
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      EXPECT_EQ(outputs.at(i), expected[i]) << "example " << i;
    }
  }
}

// ---- concurrent lazy-pack race ----------------------------------------------

// N threads race: each acquires the SHARED cache instance and immediately
// decodes a seeded-random slice of the corpus through it, so the per-panel
// std::call_once packs are hammered from every thread at once. All acquires
// must return the same instance and every decode must match the
// single-threaded reference.
TEST(PackCacheEquivalence, ConcurrentStreamsRaceLazyPackingOfSharedInstance) {
  MR_SEEDED_RNG(rng, 0xcafe);
  ScopedEnv wave("MPIRICAL_DECODE_WAVE", nullptr);
  ScopedEnv i8("MPIRICAL_DECODE_INT8", nullptr);
  const auto& inputs = harness().inputs;
  std::vector<std::string> expected;
  {
    ScopedEnv cache("MPIRICAL_PACK_CACHE", "0");
    expected = harness().model.translate_batch(inputs, /*beam_width=*/2);
  }

  // A fresh-weights copy so this test races a COLD cache even when earlier
  // tests already warmed the harness model's (copying detaches the anchor).
  const core::MpiRical model = harness().model;
  const nn::Transformer& tmodel = model.transformer();

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const nn::PackedModel>> acquired(kThreads);
  std::vector<std::vector<std::size_t>> picks(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    std::vector<std::size_t> order(inputs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);
    order.resize(4 + static_cast<std::size_t>(t) % 4);
    picks[static_cast<std::size_t>(t)] = std::move(order);
  }
  std::vector<std::vector<std::string>> got(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {}  // line up at the starting gate
      acquired[static_cast<std::size_t>(t)] =
          nn::PackedModel::acquire(tmodel, /*int8_mode=*/false);
      std::vector<core::MpiRical::TranslateRequest> mine;
      for (const std::size_t i : picks[static_cast<std::size_t>(t)]) {
        mine.push_back(inputs[i]);
      }
      got[static_cast<std::size_t>(t)] =
          model.translate_batch(mine, /*beam_width=*/2);
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(acquired[static_cast<std::size_t>(t)].get(), acquired[0].get())
        << "thread " << t << " acquired a different instance";
  }
  for (int t = 0; t < kThreads; ++t) {
    const auto& mine = picks[static_cast<std::size_t>(t)];
    ASSERT_EQ(got[static_cast<std::size_t>(t)].size(), mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(got[static_cast<std::size_t>(t)][i], expected[mine[i]])
          << "thread " << t << " request " << i;
    }
  }
}

// ---- cache identity mechanics -----------------------------------------------

TEST(PackCacheEquivalence, CacheIdentityPerModelModeCopyAndInvalidate) {
  ScopedEnv cache("MPIRICAL_PACK_CACHE", nullptr);
  MR_SEEDED_RNG(rng, 0x51d5);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 40;
  cfg.d_model = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 32;
  nn::Transformer model(cfg, rng);

  const auto f32_a = nn::PackedModel::acquire(model, false);
  const auto f32_b = nn::PackedModel::acquire(model, false);
  const auto i8_a = nn::PackedModel::acquire(model, true);
  EXPECT_EQ(f32_a.get(), f32_b.get()) << "same (model, mode) must share";
  EXPECT_NE(static_cast<const void*>(f32_a.get()),
            static_cast<const void*>(i8_a.get()))
      << "modes must not share an instance";
  EXPECT_FALSE(f32_a->int8_mode());
  EXPECT_TRUE(i8_a->int8_mode());

  // Copying detaches: the copy's weights are new storage, so it must not
  // inherit panels packed against the original's.
  nn::Transformer copy = model;
  const auto copy_f32 = nn::PackedModel::acquire(copy, false);
  EXPECT_NE(copy_f32.get(), f32_a.get());

  // Invalidation drops the slots; the next acquire builds fresh instances
  // while in-flight holders keep the old one alive.
  model.invalidate_pack_cache();
  const auto f32_c = nn::PackedModel::acquire(model, false);
  EXPECT_NE(f32_c.get(), f32_a.get());

  // Disabled: every acquire is a private instance (per-stream packing).
  ScopedEnv off("MPIRICAL_PACK_CACHE", "0");
  const auto solo_a = nn::PackedModel::acquire(model, false);
  const auto solo_b = nn::PackedModel::acquire(model, false);
  EXPECT_NE(solo_a.get(), solo_b.get());
}

TEST(PackCacheEquivalence, StatsCountHitsMissesAndPacks) {
  ScopedEnv cache("MPIRICAL_PACK_CACHE", nullptr);
  MR_SEEDED_RNG(rng, 0x57a7);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 40;
  cfg.d_model = 16;
  cfg.heads = 2;
  cfg.ffn_dim = 32;
  cfg.encoder_layers = 1;
  cfg.decoder_layers = 1;
  cfg.max_len = 32;
  nn::Transformer model(cfg, rng);

  const nn::PackCacheStats before = nn::pack_cache_stats();
  const auto pm = nn::PackedModel::acquire(model, false);
  pm->warm();
  const auto again = nn::PackedModel::acquire(model, false);
  const nn::PackCacheStats after = nn::pack_cache_stats();
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, 1u);
  // 1 decoder layer x 8 + out_proj + 1 encoder layer x 4 + fused cross-K/V.
  EXPECT_EQ(after.panels_packed - before.panels_packed, 8u + 1u + 4u + 1u);
  EXPECT_GE(after.pack_ns, before.pack_ns);
  // Warm instance: re-touching every panel packs nothing further.
  pm->warm();
  EXPECT_EQ(nn::pack_cache_stats().panels_packed, after.panels_packed);
}

}  // namespace
}  // namespace mpirical
