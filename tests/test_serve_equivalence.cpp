// Serve differential suite: outputs delivered by the continuous-batching
// daemon loop must be TOKEN-IDENTICAL to MpiRical::translate_batch on the
// same inputs, for any arrival order -- requests that join a running wave,
// arrive in randomized bursts, or interleave across connections all decode
// to the same bytes (the rowstable-GEMM guarantee, end to end over the
// socket). Plus the serve fault matrix: garbage frames and mid-frame
// disconnects abort only the offending connection, clean disconnects drop
// results without wedging the engine, and shutdown drains every queued
// request before the server exits.
#include <gtest/gtest.h>

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "corpus/dataset.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "shard/protocol.hpp"
#include "shard/transport.hpp"
#include "testing.hpp"

namespace mpirical {
namespace {

/// One tiny untrained model shared by the whole suite: decode is
/// deterministic for fixed weights, and random weights exercise the full
/// serve path without paying for training.
struct Harness {
  corpus::Dataset dataset;
  core::MpiRical model;
  std::vector<core::MpiRical::TranslateRequest> inputs;
  std::vector<std::string> expected;  // translate_batch ground truth
};

const Harness& harness() {
  static const Harness* h = [] {
    corpus::DatasetConfig dcfg;
    dcfg.corpus_size = 200;
    dcfg.seed = 137;
    dcfg.max_tokens = 180;

    core::ModelConfig mcfg;
    mcfg.d_model = 32;
    mcfg.heads = 2;
    mcfg.ffn_dim = 64;
    mcfg.encoder_layers = 1;
    mcfg.decoder_layers = 1;
    mcfg.dropout = 0.0f;
    mcfg.max_src_tokens = 256;
    mcfg.max_tgt_tokens = 32;  // bound decode length for an untrained model
    mcfg.seed = 4711;

    auto* built = new Harness;
    built->dataset = corpus::build_dataset(dcfg);
    built->model = core::MpiRical::create(built->dataset, mcfg);
    const auto& pool = built->dataset.test.empty() ? built->dataset.train
                                                   : built->dataset.test;
    for (std::size_t i = 0; i < pool.size() && built->inputs.size() < 12;
         ++i) {
      built->inputs.push_back({pool[i].input_code, pool[i].input_xsbt});
    }
    built->expected = built->model.translate_batch(built->inputs);
    return built;
  }();
  return *h;
}

/// A Server on its own thread, either on a unique socket path or (tcp=true)
/// on an ephemeral 127.0.0.1 TCP port. Clients connect while it boots
/// (unix_connect/tcp_connect retry); stop() drains and joins.
class RunningServer {
 public:
  explicit RunningServer(bool barrier_mode = false, std::size_t max_wave = 4,
                         bool tcp = false) {
    serve::ServerOptions options;
    if (tcp) {
      options.tcp_addr = "127.0.0.1:0";
    } else {
      static int counter = 0;
      socket_ = "/tmp/mpirical_serve_test_" + std::to_string(::getpid()) +
                "_" + std::to_string(counter++) + ".sock";
      options.socket_path = socket_;
    }
    options.max_wave = max_wave;
    options.barrier_mode = barrier_mode;
    server_ = std::make_unique<serve::Server>(harness().model, options);
    thread_ = std::thread([this] { server_->run(); });
  }
  ~RunningServer() { stop(); }

  void stop() {
    if (!thread_.joinable()) return;
    server_->request_shutdown();
    thread_.join();
  }

  const std::string& socket() const { return socket_; }
  serve::ServerStats stats() const { return server_->stats(); }

  /// The bound TCP port, waiting out the boot race (run() publishes it
  /// right after listen()).
  std::uint16_t tcp_port() const {
    for (int i = 0; i < 500; ++i) {
      const std::uint16_t port = server_->bound_tcp_port();
      if (port != 0) return port;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return server_->bound_tcp_port();
  }

 private:
  std::string socket_;
  std::unique_ptr<serve::Server> server_;
  std::thread thread_;
};

/// Polls `pred` for up to ~5s -- fault accounting happens on reader threads
/// the test does not otherwise synchronize with.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// ---- differential: token identity under arbitrary arrival ------------------

TEST(ServeEquivalence, BatchThroughOneConnectionMatchesLocal) {
  RunningServer server;
  serve::Client client(server.socket());
  const auto got = client.translate_batch(harness().inputs);
  ASSERT_EQ(got.size(), harness().expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], harness().expected[i]) << "request " << i;
  }
  EXPECT_EQ(server.stats().aborted_connections, 0u);
}

TEST(ServeEquivalence, RandomizedArrivalOrderAndBurstsMatchLocal) {
  MR_SEEDED_RNG(rng, 0x5e12);
  const auto& inputs = harness().inputs;
  for (int trial = 0; trial < 3; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    // A deliberately small wave forces later arrivals to queue and then
    // join a running wave mid-decode -- the continuous-batching path the
    // identity claim is really about.
    RunningServer server(/*barrier_mode=*/false,
                         /*max_wave=*/1 + rng.next_below(4));
    serve::Client client(server.socket());

    std::vector<std::size_t> order(inputs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);

    // Send in random bursts with pauses between them, so some requests
    // arrive while earlier ones are already decoding.
    std::map<std::uint64_t, std::size_t> slot_of;
    std::size_t sent = 0;
    while (sent < order.size()) {
      const std::size_t burst =
          std::min(order.size() - sent, 1 + rng.next_below(4));
      for (std::size_t b = 0; b < burst; ++b, ++sent) {
        const std::size_t slot = order[sent];
        slot_of[client.send(inputs[slot].input_code,
                            inputs[slot].input_xsbt)] = slot;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(rng.next_below(4)));
    }
    client.finish();

    std::size_t received = 0;
    while (auto res = client.recv()) {
      const auto it = slot_of.find(res->id);
      ASSERT_NE(it, slot_of.end());
      EXPECT_EQ(res->output_code, harness().expected[it->second])
          << "request slot " << it->second << " diverged from "
          << "translate_batch";
      ++received;
    }
    EXPECT_EQ(received, inputs.size());
    EXPECT_EQ(server.stats().served, inputs.size());
  }
}

TEST(ServeEquivalence, BarrierModeAlsoMatchesLocal) {
  RunningServer server(/*barrier_mode=*/true, /*max_wave=*/3);
  serve::Client client(server.socket());
  const auto got = client.translate_batch(harness().inputs);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], harness().expected[i]) << "request " << i;
  }
  // Barrier admission never tops up a live wave.
  EXPECT_EQ(server.stats().joined_running_wave, 0u);
}

TEST(ServeEquivalence, InterleavedConnectionsShareWavesWithoutCrosstalk) {
  const auto& inputs = harness().inputs;
  RunningServer server(/*barrier_mode=*/false, /*max_wave=*/3);
  serve::Client a(server.socket());
  serve::Client b(server.socket());
  // Alternate sends so the two connections' requests interleave inside the
  // same decode waves; each client must still get exactly its own answers.
  std::map<std::uint64_t, std::size_t> a_slots, b_slots;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    auto& client = (i % 2 == 0) ? a : b;
    auto& slots = (i % 2 == 0) ? a_slots : b_slots;
    slots[client.send(inputs[i].input_code, inputs[i].input_xsbt)] = i;
  }
  a.finish();
  b.finish();
  auto drain = [](serve::Client& client,
                  const std::map<std::uint64_t, std::size_t>& slots) {
    std::size_t received = 0;
    while (auto res = client.recv()) {
      const auto it = slots.find(res->id);
      ASSERT_NE(it, slots.end()) << "result for a request this connection "
                                    "never sent";
      EXPECT_EQ(res->output_code, harness().expected[it->second]);
      ++received;
    }
    EXPECT_EQ(received, slots.size());
  };
  drain(a, a_slots);
  drain(b, b_slots);
}

// ---- fault matrix -----------------------------------------------------------

TEST(ServeFaults, GarbageFrameAbortsOnlyThatConnection) {
  RunningServer server;
  {
    shard::SocketTransport garbage(
        shard::unix_connect(server.socket(), 30000));
    garbage.send("this is definitely not a protocol frame");
    // The daemon cuts the connection; our recv drains to EOF.
    while (!garbage.recv_some().empty()) {
    }
  }
  EXPECT_TRUE(eventually(
      [&] { return server.stats().aborted_connections == 1; }));

  // The engine and listener are unaffected: a well-behaved client on a
  // fresh connection still gets exact answers.
  serve::Client client(server.socket());
  const auto got = client.translate_batch(harness().inputs);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], harness().expected[i]);
  }
}

TEST(ServeFaults, MidFrameDisconnectAbortsAndCancelsQueuedWork) {
  RunningServer server(/*barrier_mode=*/false, /*max_wave=*/2);
  {
    shard::SocketTransport dying(shard::unix_connect(server.socket(), 30000));
    // A few complete requests (they may start decoding) followed by half a
    // frame, then the stream cuts -- a client dying mid-request.
    for (int i = 0; i < 3; ++i) {
      shard::TranslateWireRequest req;
      req.id = static_cast<std::uint64_t>(i + 1);
      req.input_code = harness().inputs[0].input_code;
      req.input_xsbt = harness().inputs[0].input_xsbt;
      dying.send(shard::encode_frame(
          shard::FrameType::kTranslateRequest,
          shard::encode_translate_request(req)));
    }
    const std::string frame = shard::encode_frame(
        shard::FrameType::kTranslateRequest,
        shard::encode_translate_request({99, "int main(){}", "<x>", 1}));
    dying.send(frame.substr(0, frame.size() / 2));
    dying.close();
    while (!dying.recv_some().empty()) {
    }
  }
  EXPECT_TRUE(eventually(
      [&] { return server.stats().aborted_connections == 1; }));

  serve::Client client(server.socket());
  const auto got = client.translate_batch(harness().inputs);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], harness().expected[i]);
  }
}

TEST(ServeFaults, CleanDisconnectBeforeResultsDoesNotWedgeEngine) {
  RunningServer server;
  {
    // Send one request, then tear the whole socket down (destructor closes
    // the fd) without waiting: a clean EOF whose results have nowhere to
    // go. The engine's send fails quietly and the wave moves on.
    shard::SocketTransport impatient(
        shard::unix_connect(server.socket(), 30000));
    shard::TranslateWireRequest req;
    req.id = 7;
    req.input_code = harness().inputs[0].input_code;
    req.input_xsbt = harness().inputs[0].input_xsbt;
    impatient.send(shard::encode_frame(
        shard::FrameType::kTranslateRequest,
        shard::encode_translate_request(req)));
  }
  serve::Client client(server.socket());
  const auto got = client.translate_batch(harness().inputs);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], harness().expected[i]);
  }
  // A clean half-close is not a protocol violation.
  EXPECT_EQ(server.stats().aborted_connections, 0u);
}

TEST(ServeFaults, ShutdownDrainsEveryQueuedRequest) {
  RunningServer server(/*barrier_mode=*/false, /*max_wave=*/2);
  serve::Client client(server.socket());
  std::map<std::uint64_t, std::size_t> slot_of;
  for (std::size_t i = 0; i < harness().inputs.size(); ++i) {
    slot_of[client.send(harness().inputs[i].input_code,
                        harness().inputs[i].input_xsbt)] = i;
  }
  // Shutdown lands behind the pipelined requests on the same connection:
  // admission stops, but everything already queued must still deliver.
  client.send_shutdown();
  client.finish();
  std::size_t received = 0;
  while (auto res = client.recv()) {
    const auto it = slot_of.find(res->id);
    ASSERT_NE(it, slot_of.end());
    EXPECT_EQ(res->output_code, harness().expected[it->second]);
    ++received;
  }
  EXPECT_EQ(received, harness().inputs.size());
  server.stop();  // run() must already be returning; joins promptly
  EXPECT_EQ(server.stats().served, harness().inputs.size());
}

// ---- TCP serving ------------------------------------------------------------

TEST(ServeTcp, BatchOverTcpMatchesLocal) {
  // Same daemon, same framing, TCP instead of a socket file: the token-
  // identity guarantee must not care which stream the frames rode in on.
  RunningServer server(/*barrier_mode=*/false, /*max_wave=*/4, /*tcp=*/true);
  const std::uint16_t port = server.tcp_port();
  ASSERT_NE(port, 0);
  serve::Client client("127.0.0.1", port);
  const auto got = client.translate_batch(harness().inputs);
  ASSERT_EQ(got.size(), harness().expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], harness().expected[i]) << "request " << i;
  }
  EXPECT_EQ(server.stats().aborted_connections, 0u);
}

TEST(ServeTcp, GarbageFrameOverTcpAbortsOnlyThatConnection) {
  RunningServer server(/*barrier_mode=*/false, /*max_wave=*/4, /*tcp=*/true);
  const std::uint16_t port = server.tcp_port();
  {
    shard::SocketTransport garbage(
        shard::tcp_connect("127.0.0.1", port, 30000));
    garbage.send("tcp garbage is still garbage");
    while (!garbage.recv_some().empty()) {
    }
  }
  EXPECT_TRUE(eventually(
      [&] { return server.stats().aborted_connections == 1; }));
  serve::Client client("127.0.0.1", port);
  const auto got = client.translate_batch(harness().inputs);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], harness().expected[i]);
  }
}

// ---- connection churn: reader reaping and connection pruning ----------------

TEST(ServeChurn, SteadyStateCountsStayBoundedAcrossManyConnections) {
  // Before the reaping fix, every connection ever served left a joinable
  // reader thread and a dead conns_ entry until shutdown -- a leak on any
  // long-lived daemon. Churn sequential clients and require the LIVE
  // gauges to track current clients (none), not lifetime clients.
  RunningServer server;
  const std::size_t kConnections = 12;
  for (std::size_t i = 0; i < kConnections; ++i) {
    serve::Client client(server.socket());
    client.send(harness().inputs[0].input_code,
                harness().inputs[0].input_xsbt);
    client.finish();
    std::size_t received = 0;
    while (client.recv()) ++received;
    EXPECT_EQ(received, 1u);
  }
  EXPECT_TRUE(eventually([&] {
    const serve::ServerStats s = server.stats();
    return s.accepted_connections == kConnections &&
           s.tracked_connections == 0 && s.live_readers == 0;
  })) << "accepted=" << server.stats().accepted_connections
      << " tracked=" << server.stats().tracked_connections
      << " live_readers=" << server.stats().live_readers;
  EXPECT_EQ(server.stats().served, kConnections);
}

// ---- accept-loop resilience (the transient-vs-fatal classification) ---------

TEST(ServeFaults, FdExhaustedDaemonResumesAccepting) {
  RunningServer server;
  // Pre-create the client's socket fd, THEN exhaust the descriptor table,
  // THEN connect: the connection lands in the daemon's backlog while its
  // accept() can only fail with EMFILE. The old loop treated that as fatal
  // and the daemon went deaf; the fixed loop backs off and resumes once
  // descriptors free up.
  const int cfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(cfd, 0);
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  ASSERT_LT(server.socket().size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, server.socket().c_str(),
              server.socket().size() + 1);

  struct rlimit saved;
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  struct rlimit squeezed = saved;
  squeezed.rlim_cur = 256;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &squeezed), 0);
  std::vector<int> hogs;
  for (;;) {
    const int fd = ::dup(0);
    if (fd < 0) break;
    hogs.push_back(fd);
  }
  ASSERT_EQ(
      ::connect(cfd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  // Hold the exhaustion long enough for the daemon's accept to hit EMFILE
  // at least once, then release.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (const int fd : hogs) ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);

  // The daemon must now accept and serve this very connection...
  shard::SocketTransport transport(cfd);
  shard::TranslateWireRequest req;
  req.id = 1;
  req.input_code = harness().inputs[0].input_code;
  req.input_xsbt = harness().inputs[0].input_xsbt;
  ASSERT_TRUE(transport.send(shard::encode_frame(
      shard::FrameType::kTranslateRequest,
      shard::encode_translate_request(req))));
  transport.close();
  shard::FrameParser parser;
  std::optional<shard::Frame> frame;
  for (;;) {
    const std::string bytes = transport.recv_some();
    if (bytes.empty()) break;
    parser.feed(bytes.data(), bytes.size());
    if ((frame = parser.next())) break;
  }
  ASSERT_TRUE(frame.has_value()) << "daemon never answered after EMFILE";
  const shard::TranslateWireResult res =
      shard::decode_translate_result(frame->payload);
  EXPECT_EQ(res.id, 1u);
  EXPECT_EQ(res.output_code, harness().expected[0]);

  // ...and keep serving fresh ones.
  serve::Client client(server.socket());
  const auto got = client.translate_batch(harness().inputs);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], harness().expected[i]);
  }
}

}  // namespace
}  // namespace mpirical
