// Shard-invariance differential suite: the merged EvalSummary from sharded
// evaluation (loopback deployment, shard counts {1, 2, 3, 7}, both partition
// modes) must be IDENTICAL to the unsharded core::evaluate_model -- integer
// PRF counts exactly, BLEU/METEOR/ROUGE-L/ACC bitwise (both sides reduce
// per-example scores in canonical example order) -- over randomized small
// corpora including empty splits, a 1-example split, and splits not
// divisible by the decode wave size. Also pins the predictions
// out-parameter to original split order under sharding.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "core/evaluate.hpp"
#include "core/model.hpp"
#include "core/world_snapshot.hpp"
#include "corpus/dataset.hpp"
#include "shard/eval.hpp"
#include "shard/protocol.hpp"
#include "shard/transport.hpp"
#include "snapshot/snapshot.hpp"
#include "testing.hpp"

namespace mpirical {
namespace {

using testutil::double_bits;
using testutil::ScopedEnv;

/// One tiny untrained model + dataset shared by every test in the suite:
/// decode is deterministic for fixed weights, and random weights exercise
/// the full decode/score/merge path without paying for training.
struct Harness {
  corpus::Dataset dataset;
  core::MpiRical model;
  std::vector<corpus::Example> examples;  // pool the tests slice splits from
};

const Harness& harness() {
  static const Harness* h = [] {
    corpus::DatasetConfig dcfg;
    dcfg.corpus_size = 320;
    dcfg.seed = 91;
    dcfg.max_tokens = 180;

    core::ModelConfig mcfg;
    mcfg.d_model = 32;
    mcfg.heads = 2;
    mcfg.ffn_dim = 64;
    mcfg.encoder_layers = 1;
    mcfg.decoder_layers = 1;
    mcfg.dropout = 0.0f;
    mcfg.max_src_tokens = 256;
    mcfg.max_tgt_tokens = 40;  // bound decode length for an untrained model
    mcfg.seed = 4711;

    auto* built = new Harness;
    built->dataset = corpus::build_dataset(dcfg);
    built->model = core::MpiRical::create(built->dataset, mcfg);
    built->examples = built->dataset.test;
    for (const auto& ex : built->dataset.train) {
      if (built->examples.size() >= 16) break;
      built->examples.push_back(ex);
    }
    return built;
  }();
  return *h;
}

std::vector<corpus::Example> take(std::size_t n) {
  const auto& pool = harness().examples;
  EXPECT_LE(n, pool.size());
  return {pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(n)};
}

void expect_identical(const core::EvalSummary& a, const core::EvalSummary& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.examples, b.examples);
  EXPECT_TRUE(a.m_counts == b.m_counts)
      << "M counts diverged: " << a.m_counts.tp << "/" << a.m_counts.fp << "/"
      << a.m_counts.fn << " vs " << b.m_counts.tp << "/" << b.m_counts.fp
      << "/" << b.m_counts.fn;
  EXPECT_TRUE(a.mcc_counts == b.mcc_counts);
  EXPECT_EQ(double_bits(a.bleu), double_bits(b.bleu));
  EXPECT_EQ(double_bits(a.meteor), double_bits(b.meteor));
  EXPECT_EQ(double_bits(a.rouge_l), double_bits(b.rouge_l));
  EXPECT_EQ(double_bits(a.acc), double_bits(b.acc));
}

void run_differential(const std::vector<corpus::Example>& split,
                      const char* wave, int beam_width) {
  ScopedEnv wave_env("MPIRICAL_DECODE_WAVE", wave);
  ScopedEnv shards_env("MPIRICAL_EVAL_SHARDS", nullptr);  // oracle unsharded

  std::vector<core::ExamplePrediction> oracle_preds;
  const core::EvalSummary oracle = core::evaluate_model(
      harness().model, split, beam_width, 1, &oracle_preds);
  ASSERT_EQ(oracle_preds.size(), split.size());

  for (const std::size_t shards : {1u, 2u, 3u, 7u}) {
    for (const shard::PartitionMode mode :
         {shard::PartitionMode::kStatic, shard::PartitionMode::kDynamic}) {
      shard::ShardOptions options;
      options.shards = shards;
      options.mode = mode;
      options.beam_width = beam_width;
      std::vector<core::ExamplePrediction> preds;
      const core::EvalSummary merged = shard::evaluate_sharded_inprocess(
          harness().model, split, options, &preds);
      const std::string what =
          "split=" + std::to_string(split.size()) + " wave=" + wave +
          " shards=" + std::to_string(shards) +
          (mode == shard::PartitionMode::kStatic ? " static" : " dynamic");
      expect_identical(merged, oracle, what);
      ASSERT_EQ(preds.size(), split.size()) << what;
      for (std::size_t i = 0; i < split.size(); ++i) {
        EXPECT_EQ(preds[i].predicted_code, oracle_preds[i].predicted_code)
            << what << " example " << i << " out of order";
        EXPECT_EQ(preds[i].parsed, oracle_preds[i].parsed);
        EXPECT_EQ(preds[i].predicted_calls.size(),
                  oracle_preds[i].predicted_calls.size());
      }
    }
  }
}

TEST(ShardEquivalence, EmptySplit) { run_differential(take(0), "3", 1); }

TEST(ShardEquivalence, OneExampleSplit) { run_differential(take(1), "3", 1); }

TEST(ShardEquivalence, SplitNotDivisibleByWave) {
  // 8 examples over wave 3 -> chunks of 3/3/2.
  run_differential(take(8), "3", 1);
}

TEST(ShardEquivalence, MoreShardsThanChunks) {
  // 5 examples over wave 4 -> 2 chunks for up to 7 shards.
  run_differential(take(5), "4", 1);
}

TEST(ShardEquivalence, SingleChunkCoversWholeSplit) {
  // Wave larger than the split: one chunk, sharding degenerates cleanly.
  run_differential(take(6), "64", 1);
}

TEST(ShardEquivalence, BeamSearchSplit) { run_differential(take(4), "2", 2); }

TEST(ShardEquivalence, RandomizedSplitsAndWaves) {
  MR_SEEDED_RNG(rng, 401);
  for (int trial = 0; trial < 3; ++trial) {
    const std::size_t n =
        1 + static_cast<std::size_t>(rng.next_below(
                std::min<std::size_t>(harness().examples.size(), 12)));
    const std::size_t wave = 1 + static_cast<std::size_t>(rng.next_below(5));
    run_differential(take(n), std::to_string(wave).c_str(), 1);
  }
}

TEST(ShardEquivalence, EnvRoutedEvaluateModelMatchesOracle) {
  const auto split = take(7);
  ScopedEnv wave_env("MPIRICAL_DECODE_WAVE", "3");

  std::vector<core::ExamplePrediction> oracle_preds;
  core::EvalSummary oracle;
  {
    ScopedEnv shards_env("MPIRICAL_EVAL_SHARDS", nullptr);
    oracle =
        core::evaluate_model(harness().model, split, 1, 1, &oracle_preds);
  }
  {
    // The production entry point: MPIRICAL_EVAL_SHARDS routes
    // evaluate_model through the sharded subsystem (loopback here -- no
    // self-exec worker is registered in the test binary).
    ScopedEnv shards_env("MPIRICAL_EVAL_SHARDS", "3");
    std::vector<core::ExamplePrediction> preds;
    const core::EvalSummary merged =
        core::evaluate_model(harness().model, split, 1, 1, &preds);
    expect_identical(merged, oracle, "env-routed shards=3");
    ASSERT_EQ(preds.size(), split.size());
    for (std::size_t i = 0; i < split.size(); ++i) {
      EXPECT_EQ(preds[i].predicted_code, oracle_preds[i].predicted_code)
          << "prediction " << i << " not in original split order";
    }
  }
}

// The out-parameter order contract, pinned directly against the decode
// engine: predictions[i] must be the translation of split[i] whatever the
// shard count (regression for the sharded-path ordering fix).
TEST(ShardEquivalence, PredictionsFollowSplitOrderUnderSharding) {
  const auto split = take(6);
  ScopedEnv wave_env("MPIRICAL_DECODE_WAVE", "2");

  std::vector<core::MpiRical::TranslateRequest> inputs(split.size());
  for (std::size_t i = 0; i < split.size(); ++i) {
    inputs[i] = {split[i].input_code, split[i].input_xsbt};
  }
  const std::vector<std::string> decoded =
      harness().model.translate_batch(inputs, 1);

  shard::ShardOptions options;
  options.shards = 3;
  std::vector<core::ExamplePrediction> preds;
  shard::evaluate_sharded_inprocess(harness().model, split, options, &preds);
  ASSERT_EQ(preds.size(), split.size());
  for (std::size_t i = 0; i < split.size(); ++i) {
    EXPECT_EQ(preds[i].predicted_code, decoded[i])
        << "prediction " << i << " is not the translation of split[" << i
        << "]";
  }
}

// ---- TCP transport differential ---------------------------------------------
//
// The cross-machine claim: the merged summary must not depend on WHAT the
// frames travel over. Workers here are threads speaking the real protocol
// over real 127.0.0.1 sockets (the same listen/connect/accept/SocketTransport
// path the process and remote deployments use), compared bitwise against the
// unsharded oracle, the loopback deployment, and OS pipes.

/// N connected (driver, worker) SocketTransport pairs through a real
/// listening socket.
struct TcpFleet {
  std::vector<std::unique_ptr<shard::Transport>> driver_ends;
  std::vector<std::unique_ptr<shard::Transport>> worker_ends;

  explicit TcpFleet(std::size_t n) {
    std::uint16_t port = 0;
    const int listen_fd = shard::tcp_listen("127.0.0.1", 0,
                                            static_cast<int>(n) + 1, &port);
    for (std::size_t i = 0; i < n; ++i) {
      worker_ends.push_back(std::make_unique<shard::SocketTransport>(
          shard::tcp_connect("127.0.0.1", port, 5000)));
      driver_ends.push_back(std::make_unique<shard::SocketTransport>(
          shard::tcp_accept(listen_fd)));
    }
    ::close(listen_fd);
  }

  std::vector<shard::Transport*> driver_ptrs() const {
    std::vector<shard::Transport*> out;
    for (const auto& t : driver_ends) out.push_back(t.get());
    return out;
  }
};

core::EvalSummary run_over_tcp(const std::vector<corpus::Example>& split,
                               std::size_t shards,
                               std::vector<core::ExamplePrediction>* preds) {
  TcpFleet fleet(shards);
  std::vector<std::thread> workers;
  for (auto& end : fleet.worker_ends) {
    workers.emplace_back([&split, &end] {
      shard::run_worker(harness().model, split, *end);
    });
  }
  shard::ShardOptions options;
  options.shards = shards;
  const core::EvalSummary merged = shard::run_driver(
      harness().model, split, fleet.driver_ptrs(), options, preds);
  for (auto& w : workers) w.join();
  return merged;
}

core::EvalSummary run_over_pipes(const std::vector<corpus::Example>& split,
                                 std::size_t shards,
                                 std::vector<core::ExamplePrediction>* preds) {
  std::vector<std::unique_ptr<shard::Transport>> driver_ends;
  std::vector<std::unique_ptr<shard::Transport>> worker_ends;
  for (std::size_t i = 0; i < shards; ++i) {
    int grants[2];
    int results[2];
    EXPECT_EQ(::pipe(grants), 0);
    EXPECT_EQ(::pipe(results), 0);
    driver_ends.push_back(
        std::make_unique<shard::PipeTransport>(results[0], grants[1]));
    worker_ends.push_back(
        std::make_unique<shard::PipeTransport>(grants[0], results[1]));
  }
  std::vector<std::thread> workers;
  for (auto& end : worker_ends) {
    workers.emplace_back([&split, &end] {
      shard::run_worker(harness().model, split, *end);
    });
  }
  std::vector<shard::Transport*> ptrs;
  for (const auto& t : driver_ends) ptrs.push_back(t.get());
  shard::ShardOptions options;
  options.shards = shards;
  const core::EvalSummary merged =
      shard::run_driver(harness().model, split, ptrs, options, preds);
  for (auto& w : workers) w.join();
  return merged;
}

TEST(TcpEquivalence, TcpPipeAndLoopbackAreBitIdenticalToTheOracle) {
  const auto split = take(7);
  ScopedEnv wave_env("MPIRICAL_DECODE_WAVE", "3");
  ScopedEnv shards_env("MPIRICAL_EVAL_SHARDS", nullptr);

  std::vector<core::ExamplePrediction> oracle_preds;
  const core::EvalSummary oracle = core::evaluate_model(
      harness().model, split, 1, 1, &oracle_preds);

  for (const std::size_t shards : {1u, 2u, 3u}) {
    const std::string what = "shards=" + std::to_string(shards);

    std::vector<core::ExamplePrediction> tcp_preds;
    const core::EvalSummary over_tcp = run_over_tcp(split, shards, &tcp_preds);
    expect_identical(over_tcp, oracle, what + " tcp");

    std::vector<core::ExamplePrediction> pipe_preds;
    const core::EvalSummary over_pipes =
        run_over_pipes(split, shards, &pipe_preds);
    expect_identical(over_pipes, oracle, what + " pipe");

    shard::ShardOptions options;
    options.shards = shards;
    const core::EvalSummary loopback = shard::evaluate_sharded_inprocess(
        harness().model, split, options);
    expect_identical(loopback, oracle, what + " loopback");

    ASSERT_EQ(tcp_preds.size(), split.size());
    ASSERT_EQ(pipe_preds.size(), split.size());
    for (std::size_t i = 0; i < split.size(); ++i) {
      EXPECT_EQ(tcp_preds[i].predicted_code, oracle_preds[i].predicted_code)
          << what << " tcp example " << i;
      EXPECT_EQ(pipe_preds[i].predicted_code, oracle_preds[i].predicted_code)
          << what << " pipe example " << i;
    }
  }
}

TEST(TcpEquivalence, InBandSnapshotStreamedWorkersMatchTheOracle) {
  const auto split = take(6);
  ScopedEnv wave_env("MPIRICAL_DECODE_WAVE", "2");
  ScopedEnv shards_env("MPIRICAL_EVAL_SHARDS", nullptr);
  const core::EvalSummary oracle =
      core::evaluate_model(harness().model, split, 1, 1);

  // End-to-end over the no-shared-filesystem path: the worker threads know
  // NOTHING but their socket -- model and split both arrive as a streamed
  // snapshot, exactly like a remote mpirical_eval_worker.
  const std::string bytes =
      core::build_eval_snapshot(harness().model, split);
  for (const std::size_t shards : {1u, 2u}) {
    TcpFleet fleet(shards);
    std::vector<std::thread> workers;
    for (auto& end : fleet.worker_ends) {
      workers.emplace_back(
          [&end] { shard::run_worker_from_snapshot(*end, 0.0); });
    }
    for (auto& end : fleet.driver_ends) {
      ASSERT_TRUE(shard::send_snapshot_inband(*end, bytes));
    }
    shard::ShardOptions options;
    options.shards = shards;
    const core::EvalSummary merged = shard::run_driver(
        harness().model, split, fleet.driver_ptrs(), options);
    for (auto& w : workers) w.join();
    expect_identical(merged, oracle,
                     "streamed shards=" + std::to_string(shards));
  }
}

TEST(TcpEquivalence, CorruptSnapshotStreamFallsBackInProcess) {
  const auto split = take(4);
  ScopedEnv wave_env("MPIRICAL_DECODE_WAVE", "2");
  ScopedEnv shards_env("MPIRICAL_EVAL_SHARDS", nullptr);
  const core::EvalSummary oracle =
      core::evaluate_model(harness().model, split, 1, 1);

  const std::string bytes =
      core::build_eval_snapshot(harness().model, split);
  TcpFleet fleet(1);
  std::thread worker(
      [&fleet] { shard::run_worker_from_snapshot(*fleet.worker_ends[0], 0.0); });

  // A stream whose whole-stream checksum lies: every chunk verifies, the
  // final accumulator does not. The worker must refuse the snapshot and die
  // quietly; the driver's fallback still produces the full oracle-equal
  // merge.
  shard::Transport& to_worker = *fleet.driver_ends[0];
  shard::SnapshotStreamBegin begin;
  begin.total_bytes = bytes.size();
  begin.checksum =
      snapshot::fnv1a64(bytes.data(), bytes.size()) ^ 0xDEAD;
  ASSERT_TRUE(to_worker.send(shard::encode_frame(
      shard::FrameType::kSnapshotBegin, shard::encode_snapshot_begin(begin))));
  shard::SnapshotStreamChunk chunk;
  chunk.offset = 0;
  chunk.data = bytes;
  chunk.checksum = snapshot::fnv1a64(chunk.data.data(), chunk.data.size());
  ASSERT_TRUE(to_worker.send(shard::encode_frame(
      shard::FrameType::kSnapshotChunk, shard::encode_snapshot_chunk(chunk))));
  to_worker.send(shard::encode_frame(shard::FrameType::kSnapshotEnd, ""));

  shard::ShardOptions options;
  options.shards = 1;
  const core::EvalSummary merged = shard::run_driver(
      harness().model, split, fleet.driver_ptrs(), options);
  worker.join();
  expect_identical(merged, oracle, "corrupt stream fallback");
}

}  // namespace
}  // namespace mpirical
