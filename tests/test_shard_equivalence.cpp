// Shard-invariance differential suite: the merged EvalSummary from sharded
// evaluation (loopback deployment, shard counts {1, 2, 3, 7}, both partition
// modes) must be IDENTICAL to the unsharded core::evaluate_model -- integer
// PRF counts exactly, BLEU/METEOR/ROUGE-L/ACC bitwise (both sides reduce
// per-example scores in canonical example order) -- over randomized small
// corpora including empty splits, a 1-example split, and splits not
// divisible by the decode wave size. Also pins the predictions
// out-parameter to original split order under sharding.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/evaluate.hpp"
#include "core/model.hpp"
#include "corpus/dataset.hpp"
#include "shard/eval.hpp"
#include "testing.hpp"

namespace mpirical {
namespace {

using testutil::double_bits;
using testutil::ScopedEnv;

/// One tiny untrained model + dataset shared by every test in the suite:
/// decode is deterministic for fixed weights, and random weights exercise
/// the full decode/score/merge path without paying for training.
struct Harness {
  corpus::Dataset dataset;
  core::MpiRical model;
  std::vector<corpus::Example> examples;  // pool the tests slice splits from
};

const Harness& harness() {
  static const Harness* h = [] {
    corpus::DatasetConfig dcfg;
    dcfg.corpus_size = 320;
    dcfg.seed = 91;
    dcfg.max_tokens = 180;

    core::ModelConfig mcfg;
    mcfg.d_model = 32;
    mcfg.heads = 2;
    mcfg.ffn_dim = 64;
    mcfg.encoder_layers = 1;
    mcfg.decoder_layers = 1;
    mcfg.dropout = 0.0f;
    mcfg.max_src_tokens = 256;
    mcfg.max_tgt_tokens = 40;  // bound decode length for an untrained model
    mcfg.seed = 4711;

    auto* built = new Harness;
    built->dataset = corpus::build_dataset(dcfg);
    built->model = core::MpiRical::create(built->dataset, mcfg);
    built->examples = built->dataset.test;
    for (const auto& ex : built->dataset.train) {
      if (built->examples.size() >= 16) break;
      built->examples.push_back(ex);
    }
    return built;
  }();
  return *h;
}

std::vector<corpus::Example> take(std::size_t n) {
  const auto& pool = harness().examples;
  EXPECT_LE(n, pool.size());
  return {pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(n)};
}

void expect_identical(const core::EvalSummary& a, const core::EvalSummary& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.examples, b.examples);
  EXPECT_TRUE(a.m_counts == b.m_counts)
      << "M counts diverged: " << a.m_counts.tp << "/" << a.m_counts.fp << "/"
      << a.m_counts.fn << " vs " << b.m_counts.tp << "/" << b.m_counts.fp
      << "/" << b.m_counts.fn;
  EXPECT_TRUE(a.mcc_counts == b.mcc_counts);
  EXPECT_EQ(double_bits(a.bleu), double_bits(b.bleu));
  EXPECT_EQ(double_bits(a.meteor), double_bits(b.meteor));
  EXPECT_EQ(double_bits(a.rouge_l), double_bits(b.rouge_l));
  EXPECT_EQ(double_bits(a.acc), double_bits(b.acc));
}

void run_differential(const std::vector<corpus::Example>& split,
                      const char* wave, int beam_width) {
  ScopedEnv wave_env("MPIRICAL_DECODE_WAVE", wave);
  ScopedEnv shards_env("MPIRICAL_EVAL_SHARDS", nullptr);  // oracle unsharded

  std::vector<core::ExamplePrediction> oracle_preds;
  const core::EvalSummary oracle = core::evaluate_model(
      harness().model, split, beam_width, 1, &oracle_preds);
  ASSERT_EQ(oracle_preds.size(), split.size());

  for (const std::size_t shards : {1u, 2u, 3u, 7u}) {
    for (const shard::PartitionMode mode :
         {shard::PartitionMode::kStatic, shard::PartitionMode::kDynamic}) {
      shard::ShardOptions options;
      options.shards = shards;
      options.mode = mode;
      options.beam_width = beam_width;
      std::vector<core::ExamplePrediction> preds;
      const core::EvalSummary merged = shard::evaluate_sharded_inprocess(
          harness().model, split, options, &preds);
      const std::string what =
          "split=" + std::to_string(split.size()) + " wave=" + wave +
          " shards=" + std::to_string(shards) +
          (mode == shard::PartitionMode::kStatic ? " static" : " dynamic");
      expect_identical(merged, oracle, what);
      ASSERT_EQ(preds.size(), split.size()) << what;
      for (std::size_t i = 0; i < split.size(); ++i) {
        EXPECT_EQ(preds[i].predicted_code, oracle_preds[i].predicted_code)
            << what << " example " << i << " out of order";
        EXPECT_EQ(preds[i].parsed, oracle_preds[i].parsed);
        EXPECT_EQ(preds[i].predicted_calls.size(),
                  oracle_preds[i].predicted_calls.size());
      }
    }
  }
}

TEST(ShardEquivalence, EmptySplit) { run_differential(take(0), "3", 1); }

TEST(ShardEquivalence, OneExampleSplit) { run_differential(take(1), "3", 1); }

TEST(ShardEquivalence, SplitNotDivisibleByWave) {
  // 8 examples over wave 3 -> chunks of 3/3/2.
  run_differential(take(8), "3", 1);
}

TEST(ShardEquivalence, MoreShardsThanChunks) {
  // 5 examples over wave 4 -> 2 chunks for up to 7 shards.
  run_differential(take(5), "4", 1);
}

TEST(ShardEquivalence, SingleChunkCoversWholeSplit) {
  // Wave larger than the split: one chunk, sharding degenerates cleanly.
  run_differential(take(6), "64", 1);
}

TEST(ShardEquivalence, BeamSearchSplit) { run_differential(take(4), "2", 2); }

TEST(ShardEquivalence, RandomizedSplitsAndWaves) {
  MR_SEEDED_RNG(rng, 401);
  for (int trial = 0; trial < 3; ++trial) {
    const std::size_t n =
        1 + static_cast<std::size_t>(rng.next_below(
                std::min<std::size_t>(harness().examples.size(), 12)));
    const std::size_t wave = 1 + static_cast<std::size_t>(rng.next_below(5));
    run_differential(take(n), std::to_string(wave).c_str(), 1);
  }
}

TEST(ShardEquivalence, EnvRoutedEvaluateModelMatchesOracle) {
  const auto split = take(7);
  ScopedEnv wave_env("MPIRICAL_DECODE_WAVE", "3");

  std::vector<core::ExamplePrediction> oracle_preds;
  core::EvalSummary oracle;
  {
    ScopedEnv shards_env("MPIRICAL_EVAL_SHARDS", nullptr);
    oracle =
        core::evaluate_model(harness().model, split, 1, 1, &oracle_preds);
  }
  {
    // The production entry point: MPIRICAL_EVAL_SHARDS routes
    // evaluate_model through the sharded subsystem (loopback here -- no
    // self-exec worker is registered in the test binary).
    ScopedEnv shards_env("MPIRICAL_EVAL_SHARDS", "3");
    std::vector<core::ExamplePrediction> preds;
    const core::EvalSummary merged =
        core::evaluate_model(harness().model, split, 1, 1, &preds);
    expect_identical(merged, oracle, "env-routed shards=3");
    ASSERT_EQ(preds.size(), split.size());
    for (std::size_t i = 0; i < split.size(); ++i) {
      EXPECT_EQ(preds[i].predicted_code, oracle_preds[i].predicted_code)
          << "prediction " << i << " not in original split order";
    }
  }
}

// The out-parameter order contract, pinned directly against the decode
// engine: predictions[i] must be the translation of split[i] whatever the
// shard count (regression for the sharded-path ordering fix).
TEST(ShardEquivalence, PredictionsFollowSplitOrderUnderSharding) {
  const auto split = take(6);
  ScopedEnv wave_env("MPIRICAL_DECODE_WAVE", "2");

  std::vector<core::MpiRical::TranslateRequest> inputs(split.size());
  for (std::size_t i = 0; i < split.size(); ++i) {
    inputs[i] = {split[i].input_code, split[i].input_xsbt};
  }
  const std::vector<std::string> decoded =
      harness().model.translate_batch(inputs, 1);

  shard::ShardOptions options;
  options.shards = 3;
  std::vector<core::ExamplePrediction> preds;
  shard::evaluate_sharded_inprocess(harness().model, split, options, &preds);
  ASSERT_EQ(preds.size(), split.size());
  for (std::size_t i = 0; i < split.size(); ++i) {
    EXPECT_EQ(preds[i].predicted_code, decoded[i])
        << "prediction " << i << " is not the translation of split[" << i
        << "]";
  }
}

}  // namespace
}  // namespace mpirical
