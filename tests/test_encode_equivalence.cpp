// Differential harness for the padded batched encoder (nn::encode_batch):
// decoding through a wave-encoded padded panel must emit token-for-token
// identical output (and matching scores within 1e-5) to the per-source
// padding-free batch-of-1 oracle, across ragged source-length mixes whose
// lengths straddle the kernel tile edges (6/16/72/128) and beam widths 1-8.
// On top of the differential contract, the padding-invariance property is
// asserted BITWISE: encoding the same source in batches padded to different
// max lengths yields bit-identical encoder rows and cross-attention K/V,
// because every panel projection routes through kernels::gemm_acc_rowstable
// and the masked attention's shapes depend only on the source's own length.
//
// As in test_decode_equivalence.cpp, exact token equality against the oracle
// is a probabilistic guarantee: the two encoders' logits agree only to the
// last few ULPs (different GEMM fusion, expf-approximation softmax), which
// random-model logit gaps (~1e-2) dwarf. Under an MPIRICAL_TEST_SEED re-roll
// an astronomically unlucky near-tie could flip one argmax -- check the
// divergence point's logit gap before suspecting a bug. The bitwise
// padding-invariance assertions carry no such caveat.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "nn/infer.hpp"
#include "nn/transformer.hpp"
#include "testing.hpp"

namespace mpirical::nn {
namespace {

constexpr int kSos = 1;
constexpr int kEos = 2;

// Source lengths straddling the register-tile (6) / sliver (16) / cache-block
// (72, 128) edges the panel GEMMs and attention tiles decompose over.
constexpr int kRaggedLens[] = {5, 6, 7, 15, 16, 17, 71, 72, 73, 127, 128, 129};

TransformerConfig random_config(Rng& rng) {
  TransformerConfig cfg;
  const int d_choices[] = {16, 24, 32};
  cfg.d_model = d_choices[rng.next_below(3)];
  cfg.heads = rng.next_bool() ? 2 : 4;  // both divide every d_model choice
  cfg.ffn_dim = cfg.d_model * 2;
  cfg.vocab_size = 14 + static_cast<int>(rng.next_below(20));
  cfg.encoder_layers = 1 + static_cast<int>(rng.next_below(2));
  cfg.decoder_layers = 1 + static_cast<int>(rng.next_below(2));
  cfg.max_len = 160;  // covers the 129-token ragged sources plus decode steps
  cfg.dropout = 0.0f;
  return cfg;
}

std::vector<int> source_of_len(Rng& rng, const TransformerConfig& cfg,
                               int len) {
  std::vector<int> src(static_cast<std::size_t>(len));
  for (auto& id : src) {
    id = 3 + static_cast<int>(
                 rng.next_below(static_cast<std::uint64_t>(cfg.vocab_size) - 3));
  }
  return src;
}

int pick_len(Rng& rng) {
  return kRaggedLens[rng.next_below(sizeof(kRaggedLens) /
                                    sizeof(kRaggedLens[0]))];
}

void expect_equivalent(const DecodeResult& got, const DecodeResult& want,
                       const std::string& what) {
  ASSERT_EQ(got.tokens, want.tokens) << what << ": token sequences diverged";
  ASSERT_NEAR(got.log_prob, want.log_prob,
              1e-5 * std::max(1.0, std::fabs(want.log_prob)))
      << what << ": scores diverged";
}

// The batched panel's valid rows must match the per-source oracle encoder
// (training-path tensor ops, padding-free batch of one) to within the usual
// kernel-noise tolerance.
TEST(EncodeEquivalence, PanelMatchesPerSourceOracleEncoder) {
  MR_SEEDED_RNG(rng, 0xE0);
  for (int trial = 0; trial < 3; ++trial) {
    const TransformerConfig cfg = random_config(rng);
    Transformer model(cfg, rng);
    std::vector<std::vector<int>> sources;
    for (int i = 0; i < 7; ++i) {
      sources.push_back(source_of_len(rng, cfg, pick_len(rng)));
    }
    const auto wave = encode_batch(model, sources);
    ASSERT_EQ(wave->batch, 7);
    ASSERT_EQ(wave->d, cfg.d_model);
    for (int b = 0; b < wave->batch; ++b) {
      const int len = static_cast<int>(sources[static_cast<std::size_t>(b)]
                                           .size());
      ASSERT_EQ(wave->lens[static_cast<std::size_t>(b)], len);
      Rng enc_rng(0);
      const std::vector<int> lens1 = {len};
      tensor::Tensor oracle =
          model.encode(sources[static_cast<std::size_t>(b)], 1, len, lens1,
                       /*training=*/false, enc_rng);
      const EncodedView view{wave, b};
      const float* got = view.rows();
      const auto& want = oracle.value();
      for (std::size_t i = 0;
           i < static_cast<std::size_t>(len) * cfg.d_model; ++i) {
        ASSERT_NEAR(got[i], want[i],
                    1e-4f * std::max(1.0f, std::fabs(want[i])))
            << "trial " << trial << " source " << b << " element " << i;
      }
    }
  }
}

// Greedy decode through the batched encoder, across ragged mixes of 1, 7,
// and 16 sources, vs the full per-source reference decoder.
TEST(EncodeEquivalence, GreedyTokenIdenticalAcrossRaggedMixes) {
  MR_SEEDED_RNG(rng, 0xE1);
  const TransformerConfig cfg = random_config(rng);
  Transformer model(cfg, rng);
  for (const int wave_size : {1, 7, 16}) {
    std::vector<DecodeRequest> reqs;
    for (int i = 0; i < wave_size; ++i) {
      DecodeRequest req;
      req.src_ids = source_of_len(rng, cfg, pick_len(rng));
      req.sos = kSos;
      req.eos = kEos;
      req.max_len = 14;
      req.beam_width = 1;
      reqs.push_back(std::move(req));
    }
    const auto batched = decode_batch(model, reqs);
    ASSERT_EQ(batched.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const auto ref = decode_reference(model, reqs[i].src_ids, kSos, kEos,
                                        reqs[i].max_len, 1);
      expect_equivalent(batched[i], ref,
                        "wave " + std::to_string(wave_size) + " source " +
                            std::to_string(i) + " len " +
                            std::to_string(reqs[i].src_ids.size()));
    }
  }
}

TEST(EncodeEquivalence, BeamWidths1Through8MatchReference) {
  MR_SEEDED_RNG(rng, 0xE2);
  const TransformerConfig cfg = random_config(rng);
  Transformer model(cfg, rng);
  std::vector<std::vector<int>> sources;
  for (int i = 0; i < 3; ++i) {
    sources.push_back(source_of_len(rng, cfg, pick_len(rng)));
  }
  for (int width = 1; width <= 8; ++width) {
    std::vector<DecodeRequest> reqs;
    for (const auto& src : sources) {
      reqs.push_back(DecodeRequest{src, kSos, kEos, 10, width});
    }
    const auto batched = decode_batch(model, reqs);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const auto ref =
          decode_reference(model, sources[i], kSos, kEos, 10, width);
      expect_equivalent(batched[i], ref,
                        "width " + std::to_string(width) + " source " +
                            std::to_string(i));
    }
  }
}

// Mixed beam widths and staggered decode budgets share one wave whose
// sources also have ragged lengths -- the full serving-path shape.
TEST(EncodeEquivalence, MixedBeamRaggedWaveMatchesReference) {
  MR_SEEDED_RNG(rng, 0xE3);
  const TransformerConfig cfg = random_config(rng);
  Transformer model(cfg, rng);
  std::vector<DecodeRequest> reqs;
  for (int i = 0; i < 7; ++i) {
    DecodeRequest req;
    req.src_ids = source_of_len(rng, cfg, pick_len(rng));
    req.sos = kSos;
    req.eos = kEos;
    req.max_len = 6 + i * 2;
    req.beam_width = 1 + i;
    reqs.push_back(std::move(req));
  }
  const auto batched = decode_batch(model, reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto ref = decode_reference(model, reqs[i].src_ids, kSos, kEos,
                                      reqs[i].max_len, reqs[i].beam_width);
    expect_equivalent(batched[i], ref, "request " + std::to_string(i));
  }
}

// Padding-invariance, the bitwise property: the same source encoded in
// waves padded to different max lengths (alone, and next to companions of
// tile-edge lengths 72 / 128) must produce BIT-identical encoder rows and
// cross-attention K/V. No tolerance -- every panel projection is
// row-bit-stable and the masked attention's shapes depend only on the
// source's own length.
TEST(EncodeEquivalence, PaddingInvarianceIsBitwise) {
  MR_SEEDED_RNG(rng, 0xE4);
  for (int trial = 0; trial < 2; ++trial) {
    const TransformerConfig cfg = random_config(rng);
    Transformer model(cfg, rng);
    for (const int len : {6, 16, 72}) {
      const std::vector<int> src = source_of_len(rng, cfg, len);
      // Padded to len (alone), 72, and 128: three different panel shapes.
      const std::vector<std::vector<int>> companions = {
          {}, source_of_len(rng, cfg, 72), source_of_len(rng, cfg, 128)};

      std::vector<float> base_rows;
      std::vector<std::shared_ptr<const SourceCrossKV>> base_kv;
      for (std::size_t ci = 0; ci < companions.size(); ++ci) {
        std::vector<const std::vector<int>*> wave_sources = {&src};
        if (!companions[ci].empty()) wave_sources.push_back(&companions[ci]);

        const auto wave = encode_batch(model, wave_sources);
        const EncodedView view{wave, 0};
        ASSERT_EQ(view.len(), len);
        std::vector<float> rows(
            view.rows(),
            view.rows() + static_cast<std::size_t>(len) * cfg.d_model);

        const auto kv =
            precompute_cross_kv_batch(model, wave_sources, /*batched=*/true);
        SCOPED_TRACE(::testing::Message()
                     << "trial " << trial << " len " << len << " companion "
                     << ci << " (max_len " << wave->max_len << ")");
        if (ci == 0) {
          base_rows = std::move(rows);
          base_kv = kv;
          continue;
        }
        ASSERT_EQ(rows, base_rows) << "encoder rows changed with padding";
        ASSERT_EQ(kv[0]->src_len, base_kv[0]->src_len);
        ASSERT_EQ(kv[0]->layers.size(), base_kv[0]->layers.size());
        for (std::size_t li = 0; li < kv[0]->layers.size(); ++li) {
          ASSERT_EQ(kv[0]->layers[li].kt, base_kv[0]->layers[li].kt)
              << "cross-K changed with padding (layer " << li << ")";
          ASSERT_EQ(kv[0]->layers[li].v, base_kv[0]->layers[li].v)
              << "cross-V changed with padding (layer " << li << ")";
        }
      }
    }
  }
}

// End-to-end corollary: decoding a request alone and decoding it inside a
// wave with a longer companion yields the same tokens (the cross-K/V bits
// are identical; only wave-row-count rounding in the decoder differs, which
// token gaps dwarf).
TEST(EncodeEquivalence, PaddingInvariantDecodedTokens) {
  MR_SEEDED_RNG(rng, 0xE5);
  const TransformerConfig cfg = random_config(rng);
  Transformer model(cfg, rng);
  const std::vector<int> src = source_of_len(rng, cfg, 16);
  const std::vector<int> companion = source_of_len(rng, cfg, 128);
  const DecodeRequest req{src, kSos, kEos, 12, 2};
  const DecodeRequest other{companion, kSos, kEos, 12, 2};

  const auto alone = decode_batch(model, {req});
  const auto padded = decode_batch(model, {req, other});
  EXPECT_EQ(alone[0].tokens, padded[0].tokens);
  EXPECT_NEAR(alone[0].log_prob, padded[0].log_prob,
              1e-5 * std::max(1.0, std::fabs(alone[0].log_prob)));
}

// MPIRICAL_ENCODE_BATCH=0 falls back to the per-source oracle encoder; both
// settings must match the reference decode, and the toggle must be read
// per call.
TEST(EncodeEquivalence, EncodeBatchToggleFallsBackToPerSourcePath) {
  MR_SEEDED_RNG(rng, 0xE6);
  const TransformerConfig cfg = random_config(rng);
  Transformer model(cfg, rng);
  std::vector<DecodeRequest> reqs;
  for (int i = 0; i < 3; ++i) {
    reqs.push_back(DecodeRequest{source_of_len(rng, cfg, pick_len(rng)), kSos,
                                 kEos, 10, 2});
  }

  ASSERT_TRUE(encode_batch_enabled());
  std::vector<DecodeResult> per_source;
  {
    testutil::ScopedEnv toggle("MPIRICAL_ENCODE_BATCH", "0");
    ASSERT_FALSE(encode_batch_enabled());
    per_source = decode_batch(model, reqs);
  }
  ASSERT_TRUE(encode_batch_enabled());
  const auto batched = decode_batch(model, reqs);

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto ref = decode_reference(model, reqs[i].src_ids, kSos, kEos, 10,
                                      2);
    expect_equivalent(per_source[i], ref,
                      "per-source request " + std::to_string(i));
    expect_equivalent(batched[i], ref, "batched request " + std::to_string(i));
  }
}

// Degenerate shapes: single-token sources and a source at the model's
// max_len must encode and decode like the oracle.
TEST(EncodeEquivalence, DegenerateSourceLengths) {
  MR_SEEDED_RNG(rng, 0xE7);
  TransformerConfig cfg = random_config(rng);
  cfg.max_len = 140;
  Transformer model(cfg, rng);
  for (const int len : {1, 2, 128}) {
    std::vector<DecodeRequest> reqs = {
        DecodeRequest{source_of_len(rng, cfg, len), kSos, kEos, 8, 1},
        DecodeRequest{source_of_len(rng, cfg, 1), kSos, kEos, 8, 3}};
    const auto batched = decode_batch(model, reqs);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const auto ref =
          decode_reference(model, reqs[i].src_ids, kSos, kEos, 8,
                           reqs[i].beam_width);
      expect_equivalent(batched[i], ref,
                        "len " + std::to_string(len) + " request " +
                            std::to_string(i));
    }
  }
}

}  // namespace
}  // namespace mpirical::nn
