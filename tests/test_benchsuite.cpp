#include <gtest/gtest.h>

#include "benchsuite/benchsuite.hpp"
#include "cast/printer.hpp"
#include "corpus/dataset.hpp"
#include "corpus/removal.hpp"
#include "cparse/parser.hpp"
#include "support/strings.hpp"

namespace mpirical::benchsuite {
namespace {

TEST(BenchSuite, HasElevenPrograms) {
  EXPECT_EQ(programs().size(), 11u);
}

TEST(BenchSuite, TableIIINamesPresent) {
  for (const char* name :
       {"Array Average", "Vector Dot Product", "Min-Max",
        "Matrix-Vector Multiplication", "Sum (Reduce & Gather)", "Merge Sort",
        "Pi Monte-Carlo", "Pi Riemann Sum", "Factorial", "Fibonacci",
        "Trapezoidal Rule (Integration)"}) {
    EXPECT_NO_THROW(program_by_name(name)) << name;
  }
  EXPECT_THROW(program_by_name("Quicksort"), Error);
}

class EachProgram : public ::testing::TestWithParam<int> {};

TEST_P(EachProgram, ParsesAndPassesInclusionCriteria) {
  const auto& prog = programs()[static_cast<std::size_t>(GetParam())];
  corpus::Example ex;
  EXPECT_TRUE(corpus::make_example(prog.source, 320, ex)) << prog.name;
  EXPECT_FALSE(ex.ground_truth.empty()) << prog.name;
}

TEST_P(EachProgram, RunsAndValidates) {
  const auto& prog = programs()[static_cast<std::size_t>(GetParam())];
  const auto result = validate(prog, prog.source);
  EXPECT_TRUE(result.ran) << prog.name << ": " << result.detail;
  EXPECT_TRUE(result.valid) << prog.name << ": " << result.detail;
}

TEST_P(EachProgram, StrippedVersionStillParsesButFailsOracle) {
  const auto& prog = programs()[static_cast<std::size_t>(GetParam())];
  const auto tree = parse::parse_translation_unit(prog.source);
  const auto removal = corpus::remove_mpi_calls(*tree);
  const std::string stripped = ast::print_code(*removal.stripped);
  EXPECT_NO_THROW(parse::parse_translation_unit(stripped)) << prog.name;
  // Without its MPI calls the program cannot produce the validated answer:
  // it either fails to run meaningfully or misses the oracle.
  const auto result = validate(prog, stripped);
  EXPECT_FALSE(result.valid) << prog.name;
}

TEST_P(EachProgram, GroundTruthContainsInitAndFinalize) {
  const auto& prog = programs()[static_cast<std::size_t>(GetParam())];
  corpus::Example ex;
  ASSERT_TRUE(corpus::make_example(prog.source, 320, ex));
  bool has_init = false;
  bool has_finalize = false;
  for (const auto& call : ex.ground_truth) {
    if (call.callee == "MPI_Init") has_init = true;
    if (call.callee == "MPI_Finalize") has_finalize = true;
  }
  EXPECT_TRUE(has_init) << prog.name;
  EXPECT_TRUE(has_finalize) << prog.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllEleven, EachProgram, ::testing::Range(0, 11), [](const auto& info) {
      std::string name = programs()[static_cast<std::size_t>(info.param)].name;
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
      }
      return out;
    });

TEST(BenchSuite, ValidateReportsRuntimeFailure) {
  const auto& prog = programs()[0];
  const auto result = validate(prog, "int main() { return 1 / 0; }");
  EXPECT_FALSE(result.ran);
  EXPECT_FALSE(result.valid);
  EXPECT_FALSE(result.detail.empty());
}

TEST(BenchSuite, ValidateRejectsWrongAnswer) {
  // A program that runs fine but prints the wrong value.
  const auto& prog = program_by_name("Vector Dot Product");
  const std::string wrong = R"(#include <stdio.h>
#include <mpi.h>

int main(int argc, char **argv) {
    int rank;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    if (rank == 0) {
        printf("dot product = 1.0\n");
    }
    MPI_Finalize();
    return 0;
}
)";
  const auto result = validate(prog, wrong);
  EXPECT_TRUE(result.ran);
  EXPECT_FALSE(result.valid);
}

}  // namespace
}  // namespace mpirical::benchsuite
