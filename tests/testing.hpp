// Shared helpers for the randomized tests.
//
// Every randomized test draws its Rng through MR_SEEDED_RNG so the whole
// suite reruns under a different seed via the MPIRICAL_TEST_SEED environment
// variable (e.g. `MPIRICAL_TEST_SEED=7 ctest`), while plain runs stay
// reproducible from the fixed default base. On failure, gtest's scoped trace
// prints the base seed and call-site salt needed to replay the exact stream.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "support/rng.hpp"

namespace mpirical::testutil {

/// Sets (or, with nullptr, unsets) an environment variable for the
/// enclosing scope and restores the previous state on exit -- including on
/// early returns from failed ASSERTs. gtest runs tests serially, so scoped
/// mutation is race-free.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      setenv(name_, saved_->c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

/// Raw IEEE-754 bit pattern, for asserting bitwise double equality.
inline std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace mpirical::testutil

// Declares `name` as an Rng seeded from the global test seed mixed with
// `salt`, and leaves a trace so a failure reports how to reproduce it.
#define MR_SEEDED_RNG(name, salt)                                            \
  ::mpirical::Rng name = ::mpirical::test_rng(salt);                         \
  SCOPED_TRACE(::testing::Message()                                          \
               << "replay with MPIRICAL_TEST_SEED="                          \
               << ::mpirical::test_seed_base() << " (salt " << (salt) << ")")
