// Shared helpers for the randomized tests.
//
// Every randomized test draws its Rng through MR_SEEDED_RNG so the whole
// suite reruns under a different seed via the MPIRICAL_TEST_SEED environment
// variable (e.g. `MPIRICAL_TEST_SEED=7 ctest`), while plain runs stay
// reproducible from the fixed default base. On failure, gtest's scoped trace
// prints the base seed and call-site salt needed to replay the exact stream.
#pragma once

#include <gtest/gtest.h>

#include "support/rng.hpp"

// Declares `name` as an Rng seeded from the global test seed mixed with
// `salt`, and leaves a trace so a failure reports how to reproduce it.
#define MR_SEEDED_RNG(name, salt)                                            \
  ::mpirical::Rng name = ::mpirical::test_rng(salt);                         \
  SCOPED_TRACE(::testing::Message()                                          \
               << "replay with MPIRICAL_TEST_SEED="                          \
               << ::mpirical::test_seed_base() << " (salt " << (salt) << ")")
