// Int8 weights-only decode differential suite: the quantized path
// (MPIRICAL_DECODE_INT8) against the f32 oracle, and quantized snapshot
// sections against in-memory quantization.
//
//  * greedy and beam-4 decodes over the real corpus: the int8 path is
//    deterministic, most predictions are token-identical to the f32
//    oracle, and the exact-match/BLEU drift of the rest is bounded;
//  * bitwise wave-size / padding invariance: the int8 decode's merged
//    EvalSummary is bit-identical for every MPIRICAL_DECODE_WAVE (different
//    waves pad encoder batches differently -- the rowstable int8 GEMM must
//    keep row bits independent of panel height, exactly like the f32 path);
//  * sharded evaluation under int8 merges bit-identically across
//    MPIRICAL_EVAL_SHARDS counts, extending the PR 4 discipline;
//  * quantized snapshot sections: save -> mmap-load -> save is
//    byte-identical, the loaded model's int8 decode is bit-identical to the
//    in-memory model's (the stored q/scales pack to the same panels the
//    quantize-at-pack path builds), the dequantize-on-load fallback keeps
//    the f32 path working from a quantized file, and the quantized weight
//    sections are ~4x smaller than their f32 counterparts.
//
// Standalone binary (like test_snapshot_equivalence): it builds models,
// which is the slow part of the main test binary's link-iterate loop.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/evaluate.hpp"
#include "core/model.hpp"
#include "corpus/dataset.hpp"
#include "shard/eval.hpp"
#include "snapshot/snapshot.hpp"
#include "support/io.hpp"
#include "testing.hpp"

namespace mpirical {
namespace {

using testutil::double_bits;
using testutil::ScopedEnv;

/// One tiny untrained model + dataset shared by every test (the
/// test_snapshot_equivalence harness): decode is deterministic for fixed
/// weights, and random weights exercise the full quantize/decode/score path
/// without paying for training.
struct Harness {
  corpus::Dataset dataset;
  core::MpiRical model;
  std::vector<corpus::Example> examples;
};

const Harness& harness() {
  static const Harness* h = [] {
    corpus::DatasetConfig dcfg;
    dcfg.corpus_size = 300;
    dcfg.seed = 173;
    dcfg.max_tokens = 170;

    core::ModelConfig mcfg;
    mcfg.d_model = 32;
    mcfg.heads = 2;
    mcfg.ffn_dim = 64;
    mcfg.encoder_layers = 1;
    mcfg.decoder_layers = 1;
    mcfg.dropout = 0.0f;
    mcfg.max_src_tokens = 256;
    mcfg.max_tgt_tokens = 40;
    mcfg.seed = 2027;

    auto* built = new Harness;
    built->dataset = corpus::build_dataset(dcfg);
    built->model = core::MpiRical::create(built->dataset, mcfg);
    built->examples = built->dataset.test;
    for (const auto& ex : built->dataset.train) {
      if (built->examples.size() >= 12) break;
      built->examples.push_back(ex);
    }
    return built;
  }();
  return *h;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::string> decode_all(const core::MpiRical& model,
                                    int beam_width) {
  std::vector<core::MpiRical::TranslateRequest> reqs;
  for (const auto& ex : harness().examples) {
    reqs.push_back({ex.input_code, ex.input_xsbt});
  }
  return model.translate_batch(reqs, beam_width);
}

void expect_identical(const core::EvalSummary& a, const core::EvalSummary& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.examples, b.examples);
  EXPECT_TRUE(a.m_counts == b.m_counts);
  EXPECT_TRUE(a.mcc_counts == b.mcc_counts);
  EXPECT_EQ(double_bits(a.bleu), double_bits(b.bleu));
  EXPECT_EQ(double_bits(a.meteor), double_bits(b.meteor));
  EXPECT_EQ(double_bits(a.rouge_l), double_bits(b.rouge_l));
  EXPECT_EQ(double_bits(a.acc), double_bits(b.acc));
}

// ---- int8 vs f32 oracle -----------------------------------------------------

// The quantized path is a numerical approximation of the f32 oracle, not a
// bitwise twin: token identity is expected to hold for most examples (the
// argmax/beam margins of this model dwarf the <=0.4% per-weight rounding),
// and where it breaks the summary-level drift must stay small. The bounds
// are intentionally loose -- they catch a broken kernel (garbage decodes),
// not legitimate last-ulp divergence.
TEST(QuantEquivalence, DecodeTracksF32OracleGreedyAndBeam) {
  ScopedEnv wave("MPIRICAL_DECODE_WAVE", nullptr);
  for (const int beam : {1, 4}) {
    SCOPED_TRACE("beam " + std::to_string(beam));
    ScopedEnv f32("MPIRICAL_DECODE_INT8", nullptr);
    const auto oracle = decode_all(harness().model, beam);

    ScopedEnv i8("MPIRICAL_DECODE_INT8", "1");
    const auto quant = decode_all(harness().model, beam);
    // Determinism: a second int8 run reproduces the first exactly.
    EXPECT_EQ(quant, decode_all(harness().model, beam));

    ASSERT_EQ(quant.size(), oracle.size());
    std::size_t identical = 0;
    for (std::size_t i = 0; i < quant.size(); ++i) {
      if (quant[i] == oracle[i]) ++identical;
    }
    std::printf("[quant] beam=%d token-identical %zu/%zu\n", beam, identical,
                quant.size());
    // This untrained model decodes over near-uniform logits, so a <=0.4%
    // per-weight perturbation legitimately flips near-tie argmax/beam
    // choices (measured: 4/12 greedy, 5/12 beam-4 identical). The floor is
    // set a 2x margin below that: it separates quantization noise from a
    // broken kernel (which sends identity to ~0); summary-level drift is
    // bounded tightly by SummaryDriftIsBounded.
    EXPECT_GE(identical * 6, quant.size())
        << "int8 decodes diverge from the f32 oracle on most examples";
  }
}

TEST(QuantEquivalence, SummaryDriftIsBounded) {
  ScopedEnv wave("MPIRICAL_DECODE_WAVE", nullptr);
  const auto& split = harness().examples;
  ScopedEnv f32("MPIRICAL_DECODE_INT8", nullptr);
  const core::EvalSummary oracle =
      core::evaluate_model(harness().model, split, /*beam_width=*/1);

  ScopedEnv i8("MPIRICAL_DECODE_INT8", "1");
  const core::EvalSummary quant =
      core::evaluate_model(harness().model, split, /*beam_width=*/1);

  EXPECT_EQ(quant.examples, oracle.examples);
  std::printf("[quant] acc f32=%.4f int8=%.4f bleu f32=%.4f int8=%.4f\n",
              oracle.acc, quant.acc, oracle.bleu, quant.bleu);
  // Same loose-bound philosophy as above: these trip on a broken kernel,
  // not on quantization noise.
  EXPECT_LE(std::fabs(quant.acc - oracle.acc), 0.25);
  EXPECT_LE(std::fabs(quant.bleu - oracle.bleu), 0.25);
  EXPECT_LE(std::fabs(quant.rouge_l - oracle.rouge_l), 0.25);
}

// ---- bitwise invariances of the int8 path -----------------------------------

// Different decode wave sizes group the split into different encoder batches
// (and so different padded panel heights) and different decode row counts.
// The int8 path must be bitwise invariant to all of it, exactly like f32:
// gemm_acc_packed_i8 is rowstable by construction.
TEST(QuantEquivalence, Int8WaveSizeAndPaddingInvarianceBitwise) {
  const auto& split = harness().examples;
  ScopedEnv i8("MPIRICAL_DECODE_INT8", "1");
  ScopedEnv no_shards("MPIRICAL_EVAL_SHARDS", nullptr);

  for (const int beam : {1, 4}) {
    SCOPED_TRACE("beam " + std::to_string(beam));
    std::vector<core::ExamplePrediction> base_preds;
    core::EvalSummary base;
    {
      ScopedEnv wave("MPIRICAL_DECODE_WAVE", "2");
      base = core::evaluate_model(harness().model, split, beam, 1, &base_preds);
    }
    for (const char* w : {"3", "5", "32"}) {
      ScopedEnv wave("MPIRICAL_DECODE_WAVE", w);
      std::vector<core::ExamplePrediction> preds;
      const core::EvalSummary got =
          core::evaluate_model(harness().model, split, beam, 1, &preds);
      expect_identical(got, base, std::string("wave=") + w);
      ASSERT_EQ(preds.size(), base_preds.size());
      for (std::size_t i = 0; i < preds.size(); ++i) {
        EXPECT_EQ(preds[i].predicted_code, base_preds[i].predicted_code)
            << "wave=" << w << " example " << i;
      }
    }
    // Degenerate wave: each example alone (maximum padding contrast).
    {
      ScopedEnv wave("MPIRICAL_DECODE_WAVE", "1");
      const auto singly = decode_all(harness().model, beam);
      ASSERT_EQ(singly.size(), base_preds.size());
      for (std::size_t i = 0; i < singly.size(); ++i) {
        EXPECT_EQ(singly[i], base_preds[i].predicted_code)
            << "wave=1 example " << i;
      }
    }
  }
}

TEST(QuantEquivalence, Int8ShardedEvalMergesBitIdentically) {
  const auto& split = harness().examples;
  ScopedEnv i8("MPIRICAL_DECODE_INT8", "1");
  ScopedEnv wave("MPIRICAL_DECODE_WAVE", "3");
  ScopedEnv no_shards("MPIRICAL_EVAL_SHARDS", nullptr);

  for (const int beam : {1, 4}) {
    std::vector<core::ExamplePrediction> oracle_preds;
    const core::EvalSummary oracle = core::evaluate_model(
        harness().model, split, beam, 1, &oracle_preds);
    for (const std::size_t shards : {1u, 2u, 3u}) {
      shard::ShardOptions options;
      options.shards = shards;
      options.beam_width = beam;
      std::vector<core::ExamplePrediction> preds;
      const core::EvalSummary merged = shard::evaluate_sharded_inprocess(
          harness().model, split, options, &preds);
      const std::string what = "int8 beam=" + std::to_string(beam) +
                               " shards=" + std::to_string(shards);
      expect_identical(merged, oracle, what);
      ASSERT_EQ(preds.size(), oracle_preds.size()) << what;
      for (std::size_t i = 0; i < preds.size(); ++i) {
        EXPECT_EQ(preds[i].predicted_code, oracle_preds[i].predicted_code)
            << what << " example " << i;
      }
    }
  }
}

// ---- quantized snapshot sections --------------------------------------------

TEST(QuantEquivalence, QuantizedSnapshotSaveLoadSaveIsByteIdentical) {
  ScopedEnv on("MPIRICAL_SNAPSHOT", nullptr);
  ScopedEnv q("MPIRICAL_SNAPSHOT_INT8", "1");
  const std::string path1 = temp_path("quant_a.mpsn");
  const std::string path2 = temp_path("quant_b.mpsn");
  harness().model.save(path1);
  const core::MpiRical loaded = core::MpiRical::load(path1);
  // Re-saving must re-emit the mapped q8 bytes verbatim -- requantizing the
  // dequantized weights could flip a last-ulp scale.
  loaded.save(path2);
  EXPECT_EQ(io::read_file(path1), io::read_file(path2));
  std::filesystem::remove(path1);
  std::filesystem::remove(path2);
}

TEST(QuantEquivalence, QuantizedWeightSectionsShrinkFourfold) {
  const auto f32_snap = snapshot::Snapshot::from_bytes(
      harness().model.serialize_snapshot(/*quantize_weights=*/false));
  const auto q_snap = snapshot::Snapshot::from_bytes(
      harness().model.serialize_snapshot(/*quantize_weights=*/true));
  ASSERT_EQ(f32_snap->section_count(), q_snap->section_count());

  std::size_t f32_weight_bytes = 0, q_weight_bytes = 0, quantized = 0;
  for (std::size_t i = 0; i < q_snap->section_count(); ++i) {
    const auto& qs = q_snap->section(i);
    const auto& fs = f32_snap->section(i);
    EXPECT_EQ(qs.name, fs.name);
    if (qs.kind == snapshot::SectionKind::kTensorDataI8) {
      EXPECT_EQ(fs.kind, snapshot::SectionKind::kTensorData);
      f32_weight_bytes += fs.payload.size();
      q_weight_bytes += qs.payload.size();
      ++quantized;
    } else {
      EXPECT_EQ(qs.kind, fs.kind);
      EXPECT_EQ(qs.payload, fs.payload) << "non-weight section " << qs.name
                                        << " changed under quantization";
    }
  }
  // Every 2D Linear weight quantizes: per encoder layer 4 attention + 2 ffn,
  // per decoder layer 8 attention + 2 ffn, plus the output projection.
  EXPECT_EQ(quantized, 6u + 10u + 1u);
  std::printf("[quant] weight sections: f32=%zu bytes int8=%zu bytes (%.2fx)\n",
              f32_weight_bytes, q_weight_bytes,
              static_cast<double>(f32_weight_bytes) /
                  static_cast<double>(q_weight_bytes));
  // int8 payload + f32 scale vector + 8-byte dims header: strictly between
  // 3.5x and 4x smaller for these shapes.
  EXPECT_LT(q_weight_bytes * 7, f32_weight_bytes * 2);  // > 3.5x
  EXPECT_LT(q_weight_bytes, f32_weight_bytes);
  EXPECT_LT(q_snap->total_bytes(), f32_snap->total_bytes());
}

// A model mapped from a quantized snapshot must decode BIT-IDENTICALLY (in
// int8 mode) to the in-memory model that wrote it: the stored q/scales pack
// to the same panels the quantize-at-pack path builds from f32 weights.
TEST(QuantEquivalence, MappedQuantizedSnapshotDecodesBitIdenticalInt8) {
  const std::string path = temp_path("quant_decode.mpsn");
  io::write_file(
      path, harness().model.serialize_snapshot(/*quantize_weights=*/true));
  const core::MpiRical mapped = core::MpiRical::load(path);

  ScopedEnv i8("MPIRICAL_DECODE_INT8", "1");
  ScopedEnv wave("MPIRICAL_DECODE_WAVE", "3");
  for (const int beam : {1, 4}) {
    SCOPED_TRACE("beam " + std::to_string(beam));
    const auto from_memory = decode_all(harness().model, beam);
    const auto from_mapped = decode_all(mapped, beam);
    ASSERT_EQ(from_memory.size(), from_mapped.size());
    for (std::size_t i = 0; i < from_memory.size(); ++i) {
      EXPECT_EQ(from_memory[i], from_mapped[i]) << "example " << i;
    }
  }
  const auto& split = harness().examples;
  expect_identical(core::evaluate_model(mapped, split, 1),
                   core::evaluate_model(harness().model, split, 1),
                   "mapped vs in-memory int8 eval");
  std::filesystem::remove(path);
}

// The dequantize-on-load fallback: a quantized snapshot read by the plain
// f32 path (int8 decode off) still works -- weights are dequantized into
// owned storage at load -- and behaves exactly like the in-memory model
// whose weights went through the same quantize->dequantize round trip.
TEST(QuantEquivalence, DequantizeFallbackKeepsF32PathWorking) {
  const std::string path = temp_path("quant_fallback.mpsn");
  io::write_file(
      path, harness().model.serialize_snapshot(/*quantize_weights=*/true));
  const core::MpiRical mapped = core::MpiRical::load(path);

  ScopedEnv f32("MPIRICAL_DECODE_INT8", nullptr);
  ScopedEnv wave("MPIRICAL_DECODE_WAVE", "3");
  // Deterministic, and the f32 decode of the dequantized weights matches the
  // int8 decode of the SAME stored q/scales on token identity for most
  // examples (both compute with exactly dequant(q) weights; only the GEMM
  // arithmetic differs).
  const auto a = decode_all(mapped, 1);
  EXPECT_EQ(a, decode_all(mapped, 1));

  // Round-tripping through quantized persistence twice is a fixed point:
  // the second file equals the first (dequant(q) requantizes to the same q).
  const std::string path2 = temp_path("quant_fallback2.mpsn");
  io::write_file(path2, mapped.serialize_snapshot(/*quantize_weights=*/true));
  EXPECT_EQ(io::read_file(path), io::read_file(path2));
  std::filesystem::remove(path);
  std::filesystem::remove(path2);
}

}  // namespace
}  // namespace mpirical
