// Recorder unit suite: phase paths render from ScopedPhase nesting and
// unify with literal record_phase/merge_phase paths, counters and phases
// sum across threads, gauges track last/max, the disabled recorder is
// inert, and to_json/dump emit the BENCH_*.json JSON-lines shape. The
// recorder under test is the process-global singleton (there is exactly
// one by design), so every test quiesces and resets it around its body --
// gtest runs tests serially, making that race-free.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/recorder.hpp"
#include "support/io.hpp"
#include "testing.hpp"

namespace mpirical {
namespace {

/// Enables a clean global recorder for one test body and returns it to the
/// disabled/empty default state afterwards (including the dump path, so no
/// test leaves an atexit-visible target behind).
class ObsRecorder : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Recorder& rec = obs::Recorder::global();
    rec.set_enabled(false);
    rec.reset();
    rec.set_enabled(true);
  }
  void TearDown() override {
    obs::Recorder& rec = obs::Recorder::global();
    rec.set_enabled(false);
    rec.reset();
    rec.set_dump_path("");
  }
};

TEST_F(ObsRecorder, NestedScopedPhasesRenderSlashJoinedPaths) {
  obs::Recorder& rec = obs::Recorder::global();
  {
    obs::ScopedPhase outer("outer");
    for (int i = 0; i < 2; ++i) {
      obs::ScopedPhase inner("inner");
    }
  }
  const obs::StatsSnapshot snap = rec.snapshot();
  const obs::PhaseStat* outer = snap.find_phase("outer");
  const obs::PhaseStat* inner = snap.find_phase("outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 2u);
  // The nested phase never appears as a root: its identity is the full path.
  EXPECT_EQ(snap.find_phase("inner"), nullptr);
  EXPECT_GE(outer->total_ns, inner->total_ns);
}

TEST_F(ObsRecorder, LiteralAndNestedPathsUnifyInTheSnapshot) {
  obs::Recorder& rec = obs::Recorder::global();
  {
    obs::ScopedPhase a("a");
    obs::ScopedPhase b("b");
  }
  // An absolute-path observation of the same phase (how a shard driver
  // records on behalf of the whole run) must land in the same bucket.
  rec.record_phase("a/b", 500);
  rec.merge_phase("a/b", 3, 900, 400);
  const obs::StatsSnapshot snap = rec.snapshot();
  const obs::PhaseStat* ab = snap.find_phase("a/b");
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(ab->count, 5u);
  EXPECT_GE(ab->total_ns, 1400u);
}

TEST_F(ObsRecorder, DisabledRecorderObservesNothing) {
  obs::Recorder& rec = obs::Recorder::global();
  rec.set_enabled(false);
  {
    obs::ScopedPhase phase("ghost");
  }
  rec.record_phase("ghost/direct", 1000);
  rec.counter_add("ghost_counter", 7);
  rec.gauge_set("ghost_gauge", 3.0);
  const obs::StatsSnapshot snap = rec.snapshot();
  EXPECT_TRUE(snap.phases.empty());
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
}

TEST_F(ObsRecorder, MergeWorksEvenWhileDisabled) {
  // A driver must be able to account for a worker's shipped report even
  // when its own recorder is off (the report already paid its cost).
  obs::Recorder& rec = obs::Recorder::global();
  rec.set_enabled(false);
  rec.merge_phase("shard/worker/chunk_eval", 4, 4000, 1500);
  rec.merge_counter("shard/bytes_sent", 123);
  const obs::StatsSnapshot snap = rec.snapshot();
  const obs::PhaseStat* p = snap.find_phase("shard/worker/chunk_eval");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->count, 4u);
  EXPECT_EQ(p->total_ns, 4000u);
  EXPECT_EQ(p->max_ns, 1500u);
  const obs::CounterStat* c = snap.find_counter("shard/bytes_sent");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 123u);
}

TEST_F(ObsRecorder, CountersAndPhasesSumAcrossThreads) {
  obs::Recorder& rec = obs::Recorder::global();
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < kIters; ++i) {
        rec.counter_add("work_items", 3);
        obs::ScopedPhase phase("work");
      }
    });
  }
  for (auto& t : threads) t.join();  // exits retire + merge the buffers
  const obs::StatsSnapshot snap = rec.snapshot();
  const obs::CounterStat* c = snap.find_counter("work_items");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, static_cast<std::uint64_t>(kThreads) * kIters * 3);
  const obs::PhaseStat* p = snap.find_phase("work");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->count, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_F(ObsRecorder, PhaseMaxTracksTheLargestObservation) {
  obs::Recorder& rec = obs::Recorder::global();
  rec.record_phase("spiky", 10);
  rec.record_phase("spiky", 50);
  rec.record_phase("spiky", 20);
  const obs::StatsSnapshot snap = rec.snapshot();
  const obs::PhaseStat* p = snap.find_phase("spiky");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->count, 3u);
  EXPECT_EQ(p->total_ns, 80u);
  EXPECT_EQ(p->max_ns, 50u);
}

TEST_F(ObsRecorder, GaugeTracksLastAndMax) {
  obs::Recorder& rec = obs::Recorder::global();
  rec.gauge_set("occupancy", 2.0);
  rec.gauge_set("occupancy", 9.0);
  rec.gauge_set("occupancy", 4.0);
  const obs::StatsSnapshot snap = rec.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "occupancy");
  EXPECT_EQ(snap.gauges[0].last, 4.0);
  EXPECT_EQ(snap.gauges[0].max, 9.0);
}

TEST_F(ObsRecorder, ResetZeroesAccumulationButRecordingContinues) {
  obs::Recorder& rec = obs::Recorder::global();
  rec.record_phase("phase", 100);
  rec.counter_add("count", 5);
  rec.reset();
  EXPECT_TRUE(rec.snapshot().phases.empty());
  EXPECT_TRUE(rec.snapshot().counters.empty());
  // Interned ids survive the reset; fresh observations land normally.
  rec.record_phase("phase", 7);
  const obs::StatsSnapshot snap = rec.snapshot();
  const obs::PhaseStat* p = snap.find_phase("phase");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->count, 1u);
  EXPECT_EQ(p->total_ns, 7u);
}

TEST_F(ObsRecorder, ToJsonCarriesEverySection) {
  obs::Recorder& rec = obs::Recorder::global();
  rec.record_phase("serve/encode", 2000000);  // 2 ms
  rec.counter_add("shard/stolen_chunks", 2);
  rec.gauge_set("serve/wave_occupancy", 5.0);
  const std::string json = rec.snapshot().to_json("unit");
  EXPECT_NE(json.find("\"stats\":\"unit\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"serve/encode\":{\"count\":1,\"total_ms\":2.000000"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"shard/stolen_chunks\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"serve/wave_occupancy\":{\"last\":5.000000"),
            std::string::npos)
      << json;
}

TEST_F(ObsRecorder, DumpAppendsOneJsonLinePerCall) {
  obs::Recorder& rec = obs::Recorder::global();
  const std::string path = "/tmp/mpirical_obs_dump_" +
                           std::to_string(::getpid()) + ".json";
  std::remove(path.c_str());
  rec.set_dump_path(path);
  rec.record_phase("dumped/phase", 1000);
  rec.dump("first");
  rec.dump("second");
  const std::string data = io::read_file(path);
  std::size_t lines = 0;
  for (const char ch : data) lines += ch == '\n';
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(data.find("\"stats\":\"first\""), std::string::npos);
  EXPECT_NE(data.find("\"stats\":\"second\""), std::string::npos);
  EXPECT_NE(data.find("\"dumped/phase\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsRecorder, DumpWithoutPathIsANoOp) {
  obs::Recorder& rec = obs::Recorder::global();
  rec.set_dump_path("");
  rec.record_phase("phase", 1);
  rec.dump("nowhere");  // must not throw or create anything
}

TEST_F(ObsRecorder, RandomizedInterleavingsMatchAReferenceAccumulation) {
  // Random observation streams over a fixed set of literal paths, split
  // across threads, must aggregate exactly like a sequential reference map
  // regardless of interleaving.
  MR_SEEDED_RNG(rng, 0x0b5);
  static const char* const kPaths[] = {"r/alpha", "r/beta", "r/gamma"};
  constexpr int kThreads = 4;
  constexpr int kObs = 200;

  struct Ref {
    std::uint64_t count = 0, total = 0, max = 0;
  };
  std::map<std::string, Ref> expected;
  // Pre-draw every observation (path index, duration) so the reference and
  // the threads consume the same stream.
  std::vector<std::vector<std::pair<int, std::uint64_t>>> streams(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kObs; ++i) {
      const int which = static_cast<int>(rng.next_below(3));
      const std::uint64_t ns = 1 + rng.next_below(10000);
      streams[t].push_back({which, ns});
      Ref& r = expected[kPaths[which]];
      r.count += 1;
      r.total += ns;
      r.max = std::max(r.max, ns);
    }
  }

  obs::Recorder& rec = obs::Recorder::global();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, &streams, t] {
      for (const auto& [which, ns] : streams[t]) {
        rec.record_phase(kPaths[which], ns);
      }
    });
  }
  for (auto& t : threads) t.join();

  const obs::StatsSnapshot snap = rec.snapshot();
  for (const auto& [path, ref] : expected) {
    const obs::PhaseStat* p = snap.find_phase(path);
    ASSERT_NE(p, nullptr) << path;
    EXPECT_EQ(p->count, ref.count) << path;
    EXPECT_EQ(p->total_ns, ref.total) << path;
    EXPECT_EQ(p->max_ns, ref.max) << path;
  }
}

}  // namespace
}  // namespace mpirical
