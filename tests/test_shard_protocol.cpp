// Property tests for the shard work partitioner (every example assigned
// exactly once across shard counts and chunk geometries) and round-trip /
// rejection tests for the wire protocol framing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>

#include "shard/partition.hpp"
#include "shard/protocol.hpp"
#include "shard/transport.hpp"
#include "snapshot/snapshot.hpp"
#include "support/check.hpp"
#include "testing.hpp"

namespace mpirical::shard {
namespace {

using testutil::double_bits;

// ---- make_wave_chunks -------------------------------------------------------

TEST(WaveChunks, CoverRangeExactlyOnce) {
  MR_SEEDED_RNG(rng, 101);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.next_below(200));
    const std::size_t wave = 1 + static_cast<std::size_t>(rng.next_below(40));
    const auto chunks = make_wave_chunks(n, wave);
    std::size_t expected_begin = 0;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      EXPECT_EQ(chunks[i].index, i);
      EXPECT_EQ(chunks[i].begin, expected_begin);
      EXPECT_GT(chunks[i].end, chunks[i].begin);
      EXPECT_LE(chunks[i].end - chunks[i].begin, wave);
      // Wave alignment: every chunk but the last is exactly one wave.
      if (i + 1 < chunks.size()) {
        EXPECT_EQ(chunks[i].end - chunks[i].begin, wave);
      }
      expected_begin = chunks[i].end;
    }
    EXPECT_EQ(expected_begin, n);
    EXPECT_EQ(chunks.size(), (n + wave - 1) / wave);
  }
}

TEST(WaveChunks, EmptyRangeYieldsNoChunks) {
  EXPECT_TRUE(make_wave_chunks(0, 32).empty());
}

TEST(WaveChunks, RejectsZeroWave) {
  EXPECT_THROW(make_wave_chunks(10, 0), Error);
}

// ---- Partitioner ------------------------------------------------------------

// Drains a partitioner by round-robin polling every live shard, simulating
// instant completion. Returns grant counts per chunk.
std::map<std::size_t, std::size_t> drain(Partitioner& part) {
  std::map<std::size_t, std::size_t> grants;
  bool progress = true;
  while (!part.all_complete() && progress) {
    progress = false;
    for (std::size_t s = 0; s < part.shard_count(); ++s) {
      if (part.shard_dead(s)) continue;
      while (auto c = part.next_for(s)) {
        ++grants[c->index];
        part.complete(c->index);
        progress = true;
      }
    }
  }
  return grants;
}

TEST(Partitioner, EveryChunkAssignedExactlyOnce) {
  MR_SEEDED_RNG(rng, 202);
  for (const PartitionMode mode :
       {PartitionMode::kStatic, PartitionMode::kDynamic}) {
    for (std::size_t shards = 1; shards <= 8; ++shards) {
      // Chunk geometries straddling the wave size: fewer chunks than
      // shards, equal, more, and a randomized count.
      for (const std::size_t chunks_n :
           {std::size_t{0}, std::size_t{1}, shards, shards + 3,
            static_cast<std::size_t>(rng.next_below(64))}) {
        Partitioner part(make_wave_chunks(chunks_n * 5, 5), shards, mode);
        ASSERT_EQ(part.chunk_count(), chunks_n);
        const auto grants = drain(part);
        EXPECT_TRUE(part.all_complete());
        EXPECT_EQ(grants.size(), chunks_n);
        for (const auto& [chunk, count] : grants) {
          EXPECT_LT(chunk, chunks_n);
          EXPECT_EQ(count, 1u) << "chunk " << chunk << " granted twice";
        }
      }
    }
  }
}

TEST(Partitioner, StaticModeAssignsRoundRobin) {
  const std::size_t shards = 3;
  Partitioner part(make_wave_chunks(7 * 4, 4), shards,
                   PartitionMode::kStatic);
  for (std::size_t s = 0; s < shards; ++s) {
    while (auto c = part.next_for(s)) {
      EXPECT_EQ(c->index % shards, s);
      part.complete(c->index);
    }
  }
  EXPECT_TRUE(part.all_complete());
}

TEST(Partitioner, FailedShardChunksReassignedExactlyOnce) {
  MR_SEEDED_RNG(rng, 203);
  for (const PartitionMode mode :
       {PartitionMode::kStatic, PartitionMode::kDynamic}) {
    for (int trial = 0; trial < 20; ++trial) {
      const std::size_t shards =
          2 + static_cast<std::size_t>(rng.next_below(6));
      const std::size_t chunks_n =
          1 + static_cast<std::size_t>(rng.next_below(24));
      Partitioner part(make_wave_chunks(chunks_n * 3, 3), shards, mode);

      // Shard 0 takes a few grants, completes some, then dies.
      std::set<std::size_t> unfinished;
      const std::size_t taken = rng.next_below(4) + 1;
      for (std::size_t k = 0; k < taken; ++k) {
        auto c = part.next_for(0);
        if (!c) break;
        if (rng.next_bool()) {
          part.complete(c->index);
        } else {
          unfinished.insert(c->index);
        }
      }
      part.fail_shard(0);
      EXPECT_TRUE(part.shard_dead(0));
      EXPECT_THROW(part.next_for(0), Error);

      // Survivors drain everything, including the orphans.
      std::map<std::size_t, std::size_t> grants;
      bool progress = true;
      while (!part.all_complete() && progress) {
        progress = false;
        for (std::size_t s = 1; s < shards; ++s) {
          while (auto c = part.next_for(s)) {
            ++grants[c->index];
            part.complete(c->index);
            progress = true;
          }
        }
      }
      EXPECT_TRUE(part.all_complete());
      for (const std::size_t orphan : unfinished) {
        EXPECT_EQ(grants.count(orphan), 1u)
            << "orphaned chunk " << orphan << " not reassigned";
      }
      for (const auto& [chunk, count] : grants) {
        EXPECT_EQ(count, 1u) << "chunk " << chunk << " re-granted twice";
      }
    }
  }
}

TEST(Partitioner, CompleteRequiresGrant) {
  Partitioner part(make_wave_chunks(8, 4), 2, PartitionMode::kDynamic);
  EXPECT_THROW(part.complete(0), Error);
  EXPECT_THROW(part.complete(99), Error);
}

// ---- frame protocol ---------------------------------------------------------

TEST(Framing, RoundTripAcrossArbitrarySlicing) {
  MR_SEEDED_RNG(rng, 301);
  std::vector<Frame> sent;
  std::string stream;
  for (int i = 0; i < 20; ++i) {
    Frame f;
    f.type = static_cast<FrameType>(1 + rng.next_below(5));
    const std::size_t len = static_cast<std::size_t>(rng.next_below(300));
    f.payload.resize(len);
    for (auto& ch : f.payload) {
      ch = static_cast<char>(rng.next_below(256));
    }
    stream += encode_frame(f.type, f.payload);
    sent.push_back(std::move(f));
  }

  // Feed the byte stream in random-sized slices (including size 1).
  FrameParser parser;
  std::vector<Frame> received;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t n = std::min<std::size_t>(
        1 + rng.next_below(37), stream.size() - pos);
    parser.feed(stream.data() + pos, n);
    pos += n;
    while (auto f = parser.next()) received.push_back(std::move(*f));
  }
  ASSERT_EQ(received.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(received[i].type, sent[i].type);
    EXPECT_EQ(received[i].payload, sent[i].payload);
  }
  EXPECT_FALSE(parser.has_partial());
}

TEST(Framing, GarbageMagicRejected) {
  FrameParser parser;
  const std::string junk = "GARBAGE STREAM!!";
  EXPECT_THROW(parser.feed(junk.data(), junk.size()), Error);
}

TEST(Framing, UnknownFrameTypeRejected) {
  std::string frame = encode_frame(FrameType::kHeartbeat, "");
  frame[4] = 99;  // type byte
  FrameParser parser;
  EXPECT_THROW(parser.feed(frame.data(), frame.size()), Error);
}

TEST(Framing, OversizedLengthRejected) {
  std::string frame = encode_frame(FrameType::kHeartbeat, "");
  frame[8] = 0x7F;  // top byte of the length field -> ~2 GiB
  FrameParser parser;
  EXPECT_THROW(parser.feed(frame.data(), frame.size()), Error);
}

TEST(Framing, TruncatedFrameIsDetectableNotParsed) {
  const std::string full =
      encode_frame(FrameType::kResult, std::string(100, 'x'));
  FrameParser parser;
  parser.feed(full.data(), full.size() - 7);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.has_partial());
  // The rest arrives: frame completes normally.
  parser.feed(full.data() + full.size() - 7, 7);
  auto f = parser.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->payload.size(), 100u);
  EXPECT_FALSE(parser.has_partial());
}

// ---- record round trips -----------------------------------------------------

TEST(Records, TaskGrantRoundTrip) {
  TaskGrant grant;
  grant.chunk_index = 123456789012345ULL;
  grant.begin = 7;
  grant.end = 39;
  grant.beam_width = 4;
  grant.line_tolerance = -2;
  const TaskGrant back = decode_task_grant(encode_task_grant(grant));
  EXPECT_EQ(back.chunk_index, grant.chunk_index);
  EXPECT_EQ(back.begin, grant.begin);
  EXPECT_EQ(back.end, grant.end);
  EXPECT_EQ(back.beam_width, grant.beam_width);
  EXPECT_EQ(back.line_tolerance, grant.line_tolerance);
}

TEST(Records, TaskGrantRejectsTruncationAndTrailingGarbage) {
  const std::string payload = encode_task_grant(TaskGrant{});
  EXPECT_THROW(decode_task_grant(payload.substr(0, payload.size() - 1)),
               Error);
  EXPECT_THROW(decode_task_grant(payload + "x"), Error);
  TaskGrant inverted;
  inverted.begin = 5;
  inverted.end = 2;
  EXPECT_THROW(decode_task_grant(encode_task_grant(inverted)), Error);
}

TEST(Records, ResultRecordRoundTripIsBitwise) {
  ResultRecord r;
  r.chunk_index = 3;
  r.example_index = 97;
  r.m_counts = {5, 2, 1};
  r.mcc_counts = {4, 0, 7};
  // Doubles that text round-trips would mangle: denormal, -0.0, NaN,
  // next-after values.
  r.bleu = 4.9406564584124654e-324;   // min denormal
  r.meteor = -0.0;
  r.rouge_l = std::nan("");
  r.acc = std::nextafter(1.0, 2.0);
  r.parsed = true;
  r.predicted_calls = {{"MPI_Send", 12}, {"MPI_Recv", -3}, {"", 0}};
  r.predicted_code = std::string("int main() {\0 junk\n}", 20);

  const ResultRecord back = decode_result(encode_result(r));
  EXPECT_EQ(back.chunk_index, r.chunk_index);
  EXPECT_EQ(back.example_index, r.example_index);
  EXPECT_TRUE(back.m_counts == r.m_counts);
  EXPECT_TRUE(back.mcc_counts == r.mcc_counts);
  EXPECT_EQ(double_bits(back.bleu), double_bits(r.bleu));
  EXPECT_EQ(double_bits(back.meteor), double_bits(r.meteor));
  EXPECT_EQ(double_bits(back.rouge_l), double_bits(r.rouge_l));
  EXPECT_EQ(double_bits(back.acc), double_bits(r.acc));
  EXPECT_EQ(back.parsed, r.parsed);
  ASSERT_EQ(back.predicted_calls.size(), r.predicted_calls.size());
  for (std::size_t i = 0; i < r.predicted_calls.size(); ++i) {
    EXPECT_EQ(back.predicted_calls[i].callee, r.predicted_calls[i].callee);
    EXPECT_EQ(back.predicted_calls[i].line, r.predicted_calls[i].line);
  }
  EXPECT_EQ(back.predicted_code, r.predicted_code);
}

TEST(Records, ResultRecordRandomizedRoundTrip) {
  MR_SEEDED_RNG(rng, 302);
  for (int trial = 0; trial < 30; ++trial) {
    ResultRecord r;
    r.chunk_index = rng.next_u64();
    r.example_index = rng.next_u64();
    r.m_counts = {static_cast<std::size_t>(rng.next_below(1000)),
                  static_cast<std::size_t>(rng.next_below(1000)),
                  static_cast<std::size_t>(rng.next_below(1000))};
    r.bleu = rng.next_double();
    r.meteor = rng.next_gaussian();
    r.rouge_l = rng.next_double() * 1e300;
    r.acc = rng.next_bool() ? 1.0 : 0.0;
    r.parsed = rng.next_bool();
    const std::size_t calls = rng.next_below(6);
    for (std::size_t i = 0; i < calls; ++i) {
      r.predicted_calls.push_back(
          {"MPI_Fn_" + std::to_string(rng.next_below(100)),
           static_cast<int>(rng.next_int(-5, 500))});
    }
    r.predicted_code.resize(rng.next_below(400));
    for (auto& ch : r.predicted_code) {
      ch = static_cast<char>(rng.next_below(256));
    }

    const ResultRecord back = decode_result(encode_result(r));
    EXPECT_EQ(back.example_index, r.example_index);
    EXPECT_TRUE(back.m_counts == r.m_counts);
    EXPECT_EQ(double_bits(back.bleu), double_bits(r.bleu));
    EXPECT_EQ(double_bits(back.meteor), double_bits(r.meteor));
    EXPECT_EQ(double_bits(back.rouge_l), double_bits(r.rouge_l));
    EXPECT_EQ(double_bits(back.acc), double_bits(r.acc));
    EXPECT_EQ(back.predicted_calls.size(), r.predicted_calls.size());
    EXPECT_EQ(back.predicted_code, r.predicted_code);
  }
}

TEST(Records, ResultRecordRejectsTruncation) {
  ResultRecord r;
  r.predicted_calls = {{"MPI_Send", 3}};
  r.predicted_code = "int main() { return 0; }";
  const std::string payload = encode_result(r);
  for (const std::size_t keep :
       {payload.size() - 1, payload.size() / 2, std::size_t{3}}) {
    EXPECT_THROW(decode_result(payload.substr(0, keep)), Error);
  }
  EXPECT_THROW(decode_result(payload + "!"), Error);
}

// ---- loopback transport -----------------------------------------------------

TEST(Records, SnapshotHelloRoundTripAndRejection) {
  SnapshotHello hello;
  hello.path = "/tmp/mpirical_eval_snapshot_Ab12Cd";
  const SnapshotHello back =
      decode_snapshot_hello(encode_snapshot_hello(hello));
  EXPECT_EQ(back.path, hello.path);

  const std::string payload = encode_snapshot_hello(hello);
  EXPECT_THROW(decode_snapshot_hello(payload.substr(0, payload.size() - 1)),
               Error);
  EXPECT_THROW(decode_snapshot_hello(payload + "x"), Error);
  // An empty path is a protocol violation, not a valid hello.
  EXPECT_THROW(decode_snapshot_hello(encode_snapshot_hello(SnapshotHello{})),
               Error);
}

TEST(Records, StartupInfoRoundTripAndRejection) {
  StartupInfo info;
  info.startup_us = 123456789ULL;
  info.load_us = 98765ULL;
  const StartupInfo back = decode_startup_info(encode_startup_info(info));
  EXPECT_EQ(back.startup_us, info.startup_us);
  EXPECT_EQ(back.load_us, info.load_us);

  const std::string payload = encode_startup_info(info);
  EXPECT_THROW(decode_startup_info(payload.substr(0, 7)), Error);
  EXPECT_THROW(decode_startup_info(payload + "zz"), Error);
}

TEST(Records, StatsReportRoundTripAndRejection) {
  StatsReport report;
  report.phases.push_back({"chunk_eval", 7, 123456789ULL, 45678ULL});
  report.phases.push_back({"grant_wait", 8, 42ULL, 41ULL});
  report.phases.push_back({"snapshot_load", 1, 0ULL, 0ULL});
  const StatsReport back = decode_stats_report(encode_stats_report(report));
  ASSERT_EQ(back.phases.size(), report.phases.size());
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    EXPECT_EQ(back.phases[i].path, report.phases[i].path);
    EXPECT_EQ(back.phases[i].count, report.phases[i].count);
    EXPECT_EQ(back.phases[i].total_ns, report.phases[i].total_ns);
    EXPECT_EQ(back.phases[i].max_ns, report.phases[i].max_ns);
  }
  EXPECT_TRUE(decode_stats_report(encode_stats_report({})).phases.empty());

  const std::string payload = encode_stats_report(report);
  EXPECT_THROW(decode_stats_report(payload.substr(0, 9)), Error);
  EXPECT_THROW(decode_stats_report(payload.substr(0, payload.size() - 1)),
               Error);
  EXPECT_THROW(decode_stats_report(payload + "zz"), Error);
  // A forged entry count larger than the payload could hold must be
  // rejected before any reserve.
  std::string forged = payload;
  forged[0] = '\xff';
  forged[1] = '\xff';
  forged[2] = '\xff';
  forged[3] = '\xff';
  EXPECT_THROW(decode_stats_report(forged), Error);
}

TEST(Records, SnapshotStreamBeginRoundTripAndRejection) {
  SnapshotStreamBegin begin;
  begin.total_bytes = 123456789ULL;
  begin.checksum = 0xFEEDFACECAFEBEEFULL;
  const SnapshotStreamBegin back =
      decode_snapshot_begin(encode_snapshot_begin(begin));
  EXPECT_EQ(back.total_bytes, begin.total_bytes);
  EXPECT_EQ(back.checksum, begin.checksum);

  const std::string payload = encode_snapshot_begin(begin);
  EXPECT_THROW(decode_snapshot_begin(payload.substr(0, 9)), Error);
  EXPECT_THROW(decode_snapshot_begin(payload + "x"), Error);

  // A forged size must not drive the worker into reserving terabytes.
  SnapshotStreamBegin absurd;
  absurd.total_bytes = std::uint64_t{1} << 39;
  EXPECT_THROW(decode_snapshot_begin(encode_snapshot_begin(absurd)), Error);
}

TEST(Records, SnapshotStreamChunkRoundTripVerifiesChecksum) {
  MR_SEEDED_RNG(rng, 0x5caf);
  SnapshotStreamChunk chunk;
  chunk.offset = 4 << 20;
  for (int i = 0; i < 4096; ++i) {
    chunk.data.push_back(static_cast<char>(rng.next_below(256)));
  }
  chunk.checksum = snapshot::fnv1a64(chunk.data.data(), chunk.data.size());
  const SnapshotStreamChunk back =
      decode_snapshot_chunk(encode_snapshot_chunk(chunk));
  EXPECT_EQ(back.offset, chunk.offset);
  EXPECT_EQ(back.checksum, chunk.checksum);
  EXPECT_EQ(back.data, chunk.data);

  // A single flipped bit in the data must be caught by the per-chunk
  // checksum at decode time, not discovered megabytes later.
  std::string corrupted = encode_snapshot_chunk(chunk);
  corrupted[corrupted.size() / 2] ^= 0x04;
  EXPECT_THROW(decode_snapshot_chunk(corrupted), Error);

  // A checksum that does not match the data is equally corrupt.
  SnapshotStreamChunk lying = chunk;
  lying.checksum ^= 1;
  EXPECT_THROW(decode_snapshot_chunk(encode_snapshot_chunk(lying)), Error);

  // Truncation is rejected before the checksum is even consulted.
  const std::string payload = encode_snapshot_chunk(chunk);
  EXPECT_THROW(decode_snapshot_chunk(payload.substr(0, payload.size() / 3)),
               Error);
}

TEST(Records, FnvAccumulatorMatchesOneShotHash) {
  // The streaming receiver folds chunks through fnv1a64_accum; the result
  // must equal hashing the whole buffer at once, for any split points.
  MR_SEEDED_RNG(rng, 0xacc0);
  std::string blob;
  for (int i = 0; i < 10000; ++i) {
    blob.push_back(static_cast<char>(rng.next_below(256)));
  }
  const std::uint64_t whole = snapshot::fnv1a64(blob.data(), blob.size());
  for (int trial = 0; trial < 8; ++trial) {
    std::uint64_t acc = snapshot::kFnv1a64Init;
    std::size_t off = 0;
    while (off < blob.size()) {
      const std::size_t n =
          std::min(blob.size() - off,
                   std::size_t{1} + rng.next_below(4096));
      acc = snapshot::fnv1a64_accum(acc, blob.data() + off, n);
      off += n;
    }
    EXPECT_EQ(acc, whole);
  }
}

TEST(Framing, SnapshotFrameTypesAreValidOnTheWire) {
  // The PR 5 frame types must survive the parser's type validation.
  for (const FrameType type :
       {FrameType::kSnapshot, FrameType::kStartupInfo}) {
    FrameParser parser;
    const std::string stream = encode_frame(type, "payload");
    parser.feed(stream.data(), stream.size());
    const auto frame = parser.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, type);
    EXPECT_EQ(frame->payload, "payload");
  }
}

TEST(Framing, ServeFrameTypesAreValidOnTheWire) {
  // The serve-daemon frame types must survive the parser's type
  // validation.
  for (const FrameType type :
       {FrameType::kTranslateRequest, FrameType::kTranslateResult,
        FrameType::kServeShutdown}) {
    FrameParser parser;
    const std::string stream = encode_frame(type, "payload");
    parser.feed(stream.data(), stream.size());
    const auto frame = parser.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, type);
    EXPECT_EQ(frame->payload, "payload");
  }
}

TEST(Framing, SnapshotStreamFrameTypesAreValidOnTheWire) {
  // The in-band snapshot-stream types (and the worker stats report) must
  // survive the parser's type validation; one past kStatsReport (the
  // current highest) must not.
  for (const FrameType type :
       {FrameType::kSnapshotBegin, FrameType::kSnapshotChunk,
        FrameType::kSnapshotEnd, FrameType::kStatsReport}) {
    FrameParser parser;
    const std::string stream = encode_frame(type, "payload");
    parser.feed(stream.data(), stream.size());
    const auto frame = parser.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, type);
    EXPECT_EQ(frame->payload, "payload");
  }
  FrameParser parser;
  std::string stream = encode_frame(FrameType::kStatsReport, "p");
  stream[4] = static_cast<char>(static_cast<int>(FrameType::kStatsReport) +
                                1);
  EXPECT_THROW(
      {
        parser.feed(stream.data(), stream.size());
        parser.next();
      },
      Error);
}

TEST(Records, TranslateRequestRoundTrip) {
  TranslateWireRequest req;
  req.id = 0xDEADBEEFCAFE1234ull;
  req.input_code = "int main() { return 0; }\n";
  req.input_xsbt = "<unit><fn>main</fn></unit>";
  req.beam_width = 4;
  const TranslateWireRequest back =
      decode_translate_request(encode_translate_request(req));
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.input_code, req.input_code);
  EXPECT_EQ(back.input_xsbt, req.input_xsbt);
  EXPECT_EQ(back.beam_width, req.beam_width);
}

TEST(Records, TranslateRequestRandomizedRoundTrip) {
  MR_SEEDED_RNG(rng, 0x7e57);
  for (int trial = 0; trial < 32; ++trial) {
    TranslateWireRequest req;
    req.id = rng.next_u64();
    // Arbitrary bytes, including NUL and high bits -- program text goes
    // through uninterpreted.
    const std::size_t code_len = rng.next_below(200);
    for (std::size_t i = 0; i < code_len; ++i) {
      req.input_code.push_back(static_cast<char>(rng.next_below(256)));
    }
    const std::size_t xsbt_len = rng.next_below(200);
    for (std::size_t i = 0; i < xsbt_len; ++i) {
      req.input_xsbt.push_back(static_cast<char>(rng.next_below(256)));
    }
    req.beam_width = 1 + static_cast<std::int32_t>(rng.next_below(16));
    const TranslateWireRequest back =
        decode_translate_request(encode_translate_request(req));
    EXPECT_EQ(back.id, req.id);
    EXPECT_EQ(back.input_code, req.input_code);
    EXPECT_EQ(back.input_xsbt, req.input_xsbt);
    EXPECT_EQ(back.beam_width, req.beam_width);
  }
}

TEST(Records, TranslateRequestRejectsTruncationGarbageAndBadBeam) {
  TranslateWireRequest req;
  req.id = 7;
  req.input_code = "code";
  req.input_xsbt = "xsbt";
  req.beam_width = 2;
  const std::string bytes = encode_translate_request(req);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(decode_translate_request(bytes.substr(0, cut)), Error)
        << "truncated at " << cut;
  }
  EXPECT_THROW(decode_translate_request(bytes + "z"), Error);
  // A non-positive beam width on the wire is a protocol violation, not a
  // "use the default" hint.
  std::string zero_beam = bytes;
  for (int i = 0; i < 4; ++i) zero_beam[zero_beam.size() - 1 - i] = '\0';
  EXPECT_THROW(decode_translate_request(zero_beam), Error);
}

TEST(Records, TranslateResultRoundTripAndRejection) {
  TranslateWireResult res;
  res.id = 0x0123456789ABCDEFull;
  res.output_code = "MPI_Init(&argc, &argv);\n";
  res.joined_running_wave = 1;
  const TranslateWireResult back =
      decode_translate_result(encode_translate_result(res));
  EXPECT_EQ(back.id, res.id);
  EXPECT_EQ(back.output_code, res.output_code);
  EXPECT_EQ(back.joined_running_wave, res.joined_running_wave);

  const std::string bytes = encode_translate_result(res);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_THROW(decode_translate_result(bytes.substr(0, cut)), Error)
        << "truncated at " << cut;
  }
  EXPECT_THROW(decode_translate_result(bytes + "z"), Error);
}

TEST(Loopback, DeliversBytesAndEof) {
  auto [driver, worker] = make_loopback_pair();
  EXPECT_TRUE(worker->send("hello "));
  EXPECT_TRUE(worker->send("world"));
  std::string got;
  while (got.size() < 11) {
    const std::string part = driver->recv_some();
    ASSERT_FALSE(part.empty());
    got += part;
  }
  EXPECT_EQ(got, "hello world");
  worker->close();
  EXPECT_TRUE(driver->recv_some().empty());
}

TEST(Loopback, FaultCutsBothDirectionsAfterKSends) {
  LoopbackFault fault;
  fault.fail_after_sends = 2;
  fault.truncate_bytes = 3;
  auto [driver, worker] = make_loopback_pair(fault);
  EXPECT_TRUE(worker->send("aaaa"));
  EXPECT_TRUE(worker->send("bbbb"));
  EXPECT_FALSE(worker->send("cccc"));   // dies here, 3 bytes delivered
  EXPECT_FALSE(worker->send("dddd"));   // stays dead
  std::string got;
  for (;;) {
    const std::string part = driver->recv_some();
    if (part.empty()) break;
    got += part;
  }
  EXPECT_EQ(got, "aaaabbbbccc");
  // The dead worker's recv sees EOF even though the driver never closed,
  // and sending toward it fails like a pipe with its reader gone (EPIPE).
  EXPECT_FALSE(driver->send("grant"));
  EXPECT_TRUE(worker->recv_some().empty());
}

}  // namespace
}  // namespace mpirical::shard
