// Observability inertness suite: the phase recorder must be provably inert.
// Every instrumented path -- the continuous-batching serve loop under
// randomized arrival, the sharded TCP eval, the int8 weights-only decode,
// and the core wave loop -- must produce BITWISE-identical tokens and
// EvalSummaries with the recorder on and off, while the recorder-on run
// actually observes the phases the README documents (serve/*, shard/*,
// nn/wave/*) and dumps them as one JSON line.
//
// The recorder reads MPIRICAL_STATS only at first construction, so these
// tests drive the documented test hooks (set_enabled / set_dump_path)
// directly instead of re-execing per configuration.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluate.hpp"
#include "core/model.hpp"
#include "corpus/dataset.hpp"
#include "obs/recorder.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "shard/eval.hpp"
#include "shard/transport.hpp"
#include "support/io.hpp"
#include "testing.hpp"

namespace mpirical {
namespace {

using testutil::double_bits;
using testutil::ScopedEnv;

/// One tiny untrained model + dataset shared by the whole suite: decode is
/// deterministic for fixed weights, so on-vs-off identity is exact, and
/// random weights exercise the full serve/shard/decode paths without
/// paying for training.
struct Harness {
  corpus::Dataset dataset;
  core::MpiRical model;
  std::vector<core::MpiRical::TranslateRequest> inputs;
  std::vector<std::string> expected;          // translate_batch ground truth
  std::vector<corpus::Example> examples;      // pool for shard splits
};

const Harness& harness() {
  static const Harness* h = [] {
    corpus::DatasetConfig dcfg;
    dcfg.corpus_size = 200;
    dcfg.seed = 137;
    dcfg.max_tokens = 180;

    core::ModelConfig mcfg;
    mcfg.d_model = 32;
    mcfg.heads = 2;
    mcfg.ffn_dim = 64;
    mcfg.encoder_layers = 1;
    mcfg.decoder_layers = 1;
    mcfg.dropout = 0.0f;
    mcfg.max_src_tokens = 256;
    mcfg.max_tgt_tokens = 32;  // bound decode length for an untrained model
    mcfg.seed = 4711;

    auto* built = new Harness;
    built->dataset = corpus::build_dataset(dcfg);
    built->model = core::MpiRical::create(built->dataset, mcfg);
    const auto& pool = built->dataset.test.empty() ? built->dataset.train
                                                   : built->dataset.test;
    for (std::size_t i = 0; i < pool.size() && built->inputs.size() < 10;
         ++i) {
      built->inputs.push_back({pool[i].input_code, pool[i].input_xsbt});
    }
    built->expected = built->model.translate_batch(built->inputs);
    built->examples = built->dataset.test;
    for (const auto& ex : built->dataset.train) {
      if (built->examples.size() >= 8) break;
      built->examples.push_back(ex);
    }
    return built;
  }();
  return *h;
}

/// Quiesced, empty, DISABLED global recorder for one scope; tests enable it
/// explicitly for their "on" leg. Restores the disabled/empty default.
struct RecorderScope {
  RecorderScope() { clear(); }
  ~RecorderScope() {
    clear();
    obs::Recorder::global().set_dump_path("");
  }
  static void clear() {
    obs::Recorder& rec = obs::Recorder::global();
    rec.set_enabled(false);
    rec.reset();
  }
};

void expect_identical(const core::EvalSummary& a, const core::EvalSummary& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.examples, b.examples);
  EXPECT_TRUE(a.m_counts == b.m_counts);
  EXPECT_TRUE(a.mcc_counts == b.mcc_counts);
  EXPECT_EQ(double_bits(a.bleu), double_bits(b.bleu));
  EXPECT_EQ(double_bits(a.meteor), double_bits(b.meteor));
  EXPECT_EQ(double_bits(a.rouge_l), double_bits(b.rouge_l));
  EXPECT_EQ(double_bits(a.acc), double_bits(b.acc));
}

// ---- serve: randomized arrival, recorder on vs off --------------------------

/// A Server over harness().model on its own thread and unique socket.
class RunningServer {
 public:
  explicit RunningServer(std::size_t max_wave) {
    static int counter = 0;
    socket_ = "/tmp/mpirical_obs_serve_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter++) + ".sock";
    serve::ServerOptions options;
    options.socket_path = socket_;
    options.max_wave = max_wave;
    server_ = std::make_unique<serve::Server>(harness().model, options);
    thread_ = std::thread([this] { server_->run(); });
  }
  ~RunningServer() { stop(); }

  void stop() {
    if (!thread_.joinable()) return;
    server_->request_shutdown();
    thread_.join();
  }

  const std::string& socket() const { return socket_; }
  serve::ServerStats stats() const { return server_->stats(); }

 private:
  std::string socket_;
  std::unique_ptr<serve::Server> server_;
  std::thread thread_;
};

/// Replays one pre-drawn arrival schedule (shuffled order, burst sizes)
/// against a fresh server and returns outputs keyed by input slot. The
/// schedule is drawn ONCE per test so the recorder-on and recorder-off legs
/// see byte-identical request streams.
std::map<std::size_t, std::string> run_serve_trial(
    const std::vector<std::size_t>& order,
    const std::vector<std::size_t>& bursts, std::size_t max_wave) {
  const auto& inputs = harness().inputs;
  RunningServer server(max_wave);
  serve::Client client(server.socket());
  std::map<std::uint64_t, std::size_t> slot_of;
  std::size_t sent = 0;
  for (const std::size_t burst : bursts) {
    for (std::size_t b = 0; b < burst && sent < order.size(); ++b, ++sent) {
      const std::size_t slot = order[sent];
      slot_of[client.send(inputs[slot].input_code,
                          inputs[slot].input_xsbt)] = slot;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  client.finish();
  std::map<std::size_t, std::string> by_slot;
  while (auto res = client.recv()) {
    by_slot[slot_of.at(res->id)] = res->output_code;
  }
  return by_slot;
}

TEST(ObsEquivalence, ServeShuffledArrivalIsBitwiseIdenticalOnVsOff) {
  RecorderScope scope;
  MR_SEEDED_RNG(rng, 0x0b51);
  const auto& inputs = harness().inputs;

  // One schedule, two legs. A small wave forces queueing + wave joins, so
  // the instrumented queue_wait/wave_join paths actually run.
  std::vector<std::size_t> order(inputs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<std::size_t> bursts;
  for (std::size_t planned = 0; planned < order.size();) {
    const std::size_t burst = 1 + rng.next_below(3);
    bursts.push_back(burst);
    planned += burst;
  }
  const std::size_t max_wave = 1 + rng.next_below(3);

  const auto off = run_serve_trial(order, bursts, max_wave);

  obs::Recorder& rec = obs::Recorder::global();
  rec.set_enabled(true);
  const auto on = run_serve_trial(order, bursts, max_wave);
  rec.set_enabled(false);

  ASSERT_EQ(off.size(), inputs.size());
  ASSERT_EQ(on.size(), inputs.size());
  for (std::size_t slot = 0; slot < inputs.size(); ++slot) {
    EXPECT_EQ(on.at(slot), off.at(slot)) << "slot " << slot;
    EXPECT_EQ(on.at(slot), harness().expected[slot]) << "slot " << slot;
  }

  // The on leg must have actually observed the serve phase tree.
  const obs::StatsSnapshot snap = rec.snapshot();
  for (const char* path : {"serve/queue_wait", "serve/encode",
                           "serve/decode_steps", "serve/result_write"}) {
    const obs::PhaseStat* p = snap.find_phase(path);
    ASSERT_NE(p, nullptr) << path;
    EXPECT_GT(p->count, 0u) << path;
  }
  bool saw_occupancy = false;
  for (const auto& g : snap.gauges) {
    saw_occupancy |= g.name == "serve/wave_occupancy";
  }
  EXPECT_TRUE(saw_occupancy);
}

TEST(ObsEquivalence, ServerStatsCarryPhasesOnlyWhileEnabled) {
  RecorderScope scope;
  {
    RunningServer server(/*max_wave=*/4);
    serve::Client client(server.socket());
    client.translate_batch(harness().inputs);
    EXPECT_TRUE(server.stats().phases.empty());
  }
  obs::Recorder::global().set_enabled(true);
  {
    RunningServer server(/*max_wave=*/4);
    serve::Client client(server.socket());
    client.translate_batch(harness().inputs);
    const serve::ServerStats stats = server.stats();
    ASSERT_FALSE(stats.phases.empty());
    for (const auto& p : stats.phases) {
      EXPECT_EQ(p.path.rfind("serve/", 0), 0u) << p.path;
    }
  }
}

// ---- shard: 2-shard TCP eval, recorder on vs off ----------------------------

/// N connected (driver, worker) SocketTransport pairs through a real
/// listening socket (the test_shard_equivalence fleet).
struct TcpFleet {
  std::vector<std::unique_ptr<shard::Transport>> driver_ends;
  std::vector<std::unique_ptr<shard::Transport>> worker_ends;

  explicit TcpFleet(std::size_t n) {
    std::uint16_t port = 0;
    const int listen_fd = shard::tcp_listen("127.0.0.1", 0,
                                            static_cast<int>(n) + 1, &port);
    for (std::size_t i = 0; i < n; ++i) {
      worker_ends.push_back(std::make_unique<shard::SocketTransport>(
          shard::tcp_connect("127.0.0.1", port, 5000)));
      driver_ends.push_back(std::make_unique<shard::SocketTransport>(
          shard::tcp_accept(listen_fd)));
    }
    ::close(listen_fd);
  }

  std::vector<shard::Transport*> driver_ptrs() const {
    std::vector<shard::Transport*> out;
    for (const auto& t : driver_ends) out.push_back(t.get());
    return out;
  }
};

core::EvalSummary run_over_tcp(const std::vector<corpus::Example>& split,
                               std::size_t shards,
                               shard::ShardRunStats* run_stats) {
  TcpFleet fleet(shards);
  std::vector<std::thread> workers;
  for (auto& end : fleet.worker_ends) {
    workers.emplace_back([&split, &end] {
      shard::run_worker(harness().model, split, *end);
    });
  }
  shard::ShardOptions options;
  options.shards = shards;
  const core::EvalSummary merged =
      shard::run_driver(harness().model, split, fleet.driver_ptrs(), options,
                        /*predictions=*/nullptr, run_stats);
  for (auto& w : workers) w.join();
  return merged;
}

TEST(ObsEquivalence, TwoShardTcpEvalIsBitwiseIdenticalOnVsOff) {
  RecorderScope scope;
  ScopedEnv wave_env("MPIRICAL_DECODE_WAVE", "3");
  ScopedEnv shards_env("MPIRICAL_EVAL_SHARDS", nullptr);
  const auto split = harness().examples;
  ASSERT_GE(split.size(), 7u);

  const core::EvalSummary oracle =
      core::evaluate_model(harness().model, split, 1, 1);
  const core::EvalSummary off = run_over_tcp(split, 2, nullptr);
  expect_identical(off, oracle, "recorder off");
  RecorderScope::clear();  // drop the off leg's merged worker phases

  obs::Recorder& rec = obs::Recorder::global();
  rec.set_enabled(true);
  shard::ShardRunStats run_stats;
  const core::EvalSummary on = run_over_tcp(split, 2, &run_stats);
  rec.set_enabled(false);
  expect_identical(on, oracle, "recorder on");

  // The run record must carry the driver- and worker-side measurements.
  EXPECT_GT(run_stats.grant_rtt.count, 0u);
  EXPECT_GT(run_stats.grant_rtt.total_ns, 0u);
  EXPECT_GT(run_stats.bytes_sent, 0u);
  EXPECT_GT(run_stats.bytes_received, 0u);
  bool saw_chunk_eval = false, saw_grant_wait = false;
  for (const auto& p : run_stats.worker_phases) {
    saw_chunk_eval |= p.path == "chunk_eval" && p.count > 0;
    saw_grant_wait |= p.path == "grant_wait" && p.count > 0;
  }
  EXPECT_TRUE(saw_chunk_eval) << "no worker shipped a chunk_eval phase";
  EXPECT_TRUE(saw_grant_wait) << "no worker shipped a grant_wait phase";

  // ...and the same measurements land in the global recorder tree.
  const obs::StatsSnapshot snap = rec.snapshot();
  const obs::PhaseStat* rtt = snap.find_phase("shard/grant_rtt");
  ASSERT_NE(rtt, nullptr);
  EXPECT_EQ(rtt->count, run_stats.grant_rtt.count);
  const obs::PhaseStat* chunk = snap.find_phase("shard/worker/chunk_eval");
  ASSERT_NE(chunk, nullptr);
  EXPECT_GT(chunk->count, 0u);
  const obs::CounterStat* sent = snap.find_counter("shard/bytes_sent");
  ASSERT_NE(sent, nullptr);
  EXPECT_EQ(sent->value, run_stats.bytes_sent);
}

// ---- core + int8 decode, recorder on vs off ---------------------------------

TEST(ObsEquivalence, CoreEvaluateIsBitwiseIdenticalOnVsOff) {
  RecorderScope scope;
  ScopedEnv wave_env("MPIRICAL_DECODE_WAVE", "3");
  ScopedEnv shards_env("MPIRICAL_EVAL_SHARDS", nullptr);
  const auto split = harness().examples;

  const core::EvalSummary off =
      core::evaluate_model(harness().model, split, 1, 1);

  obs::Recorder& rec = obs::Recorder::global();
  rec.set_enabled(true);
  const core::EvalSummary on =
      core::evaluate_model(harness().model, split, 1, 1);
  rec.set_enabled(false);

  expect_identical(on, off, "evaluate_model on vs off");
  const obs::StatsSnapshot snap = rec.snapshot();
  for (const char* path :
       {"eval/decode", "eval/score", "nn/wave/encode", "nn/wave/decode"}) {
    const obs::PhaseStat* p = snap.find_phase(path);
    ASSERT_NE(p, nullptr) << path;
    EXPECT_GT(p->count, 0u) << path;
  }
}

TEST(ObsEquivalence, Int8DecodeIsBitwiseIdenticalOnVsOff) {
  RecorderScope scope;
  ScopedEnv int8_env("MPIRICAL_DECODE_INT8", "1");

  const auto off = harness().model.translate_batch(harness().inputs);

  obs::Recorder& rec = obs::Recorder::global();
  rec.set_enabled(true);
  const auto on = harness().model.translate_batch(harness().inputs);
  rec.set_enabled(false);

  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i], off[i]) << "request " << i;
  }
  const obs::PhaseStat* p = rec.snapshot().find_phase("nn/wave/decode");
  ASSERT_NE(p, nullptr);
  EXPECT_GT(p->count, 0u);
}

// ---- end-of-run dump --------------------------------------------------------

TEST(ObsEquivalence, DumpWritesTheObservedPhasesAsOneJsonLine) {
  RecorderScope scope;
  const std::string path = "/tmp/mpirical_obs_stats_" +
                           std::to_string(::getpid()) + ".json";
  std::remove(path.c_str());

  obs::Recorder& rec = obs::Recorder::global();
  rec.set_enabled(true);
  rec.set_dump_path(path);
  harness().model.translate_batch(
      {harness().inputs.begin(), harness().inputs.begin() + 2});
  rec.dump("obs_equivalence");
  rec.set_enabled(false);

  ASSERT_TRUE(io::file_exists(path));
  const std::string data = io::read_file(path);
  EXPECT_NE(data.find("\"stats\":\"obs_equivalence\""), std::string::npos);
  EXPECT_NE(data.find("\"nn/wave/decode\""), std::string::npos) << data;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mpirical
