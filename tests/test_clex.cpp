#include <gtest/gtest.h>

#include "clex/lexer.hpp"
#include "support/check.hpp"

namespace mpirical::lex {
namespace {

std::vector<Token> lex(const std::string& src) { return tokenize(src); }

TEST(Lexer, EmptyInputYieldsEof) {
  const auto toks = lex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kEndOfFile);
}

TEST(Lexer, IdentifiersAndKeywords) {
  const auto toks = lex("int foo while bar_2 _x");
  EXPECT_EQ(toks[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(toks[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[2].kind, TokenKind::kKeyword);
  EXPECT_EQ(toks[3].text, "bar_2");
  EXPECT_EQ(toks[4].text, "_x");
}

TEST(Lexer, IntLiterals) {
  const auto toks = lex("0 42 100000L 0x1F 7u");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(toks[i].kind, TokenKind::kIntLiteral) << i;
  }
  EXPECT_EQ(toks[3].text, "0x1F");
  EXPECT_EQ(toks[4].text, "7u");
}

TEST(Lexer, FloatLiterals) {
  const auto toks = lex("3.14 1e-6 2.5f 1.0E+3 7.");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(toks[i].kind, TokenKind::kFloatLiteral) << toks[i].text;
  }
}

TEST(Lexer, IntFollowedByMemberIsNotFloat) {
  // "1..5" style does not appear in C, but "x.y" after a number must not
  // glue: "f(1)."
  const auto toks = lex("1 . x");
  EXPECT_EQ(toks[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(toks[1].kind, TokenKind::kPunct);
}

TEST(Lexer, StringLiteralKeepsQuotesAndEscapes) {
  const auto toks = lex("\"hello %d\\n\"");
  ASSERT_EQ(toks[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(toks[0].text, "\"hello %d\\n\"");
}

TEST(Lexer, StringWithEscapedQuote) {
  const auto toks = lex(R"("a\"b")");
  EXPECT_EQ(toks[0].text, R"("a\"b")");
}

TEST(Lexer, CharLiteral) {
  const auto toks = lex("'a' '\\n'");
  EXPECT_EQ(toks[0].kind, TokenKind::kCharLiteral);
  EXPECT_EQ(toks[1].text, "'\\n'");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(lex("\"oops"), Error);
  EXPECT_THROW(lex("\"oops\n\""), Error);
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(lex("/* never ends"), Error);
}

TEST(Lexer, CommentsAreSkipped) {
  const auto toks = lex("a // line comment\nb /* block */ c");
  ASSERT_EQ(toks.size(), 4u);  // a b c EOF
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, BlockCommentSpanningLinesUpdatesLineNumbers) {
  const auto toks = lex("/* one\ntwo\nthree */ x");
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[0].line, 3);
}

TEST(Lexer, DirectiveCapturedWhole) {
  const auto toks = lex("#include <mpi.h>\nint x;");
  ASSERT_EQ(toks[0].kind, TokenKind::kDirective);
  EXPECT_EQ(toks[0].text, "#include <mpi.h>");
  EXPECT_EQ(toks[1].text, "int");
}

TEST(Lexer, DirectiveOnlyAtLineStart) {
  // '#' mid-line is an error (not a directive) -- it is not a C token.
  EXPECT_THROW(lex("int x; #define Y 1"), Error);
}

TEST(Lexer, LineAndColumnTracking) {
  const auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[0].column, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].column, 3);
}

TEST(Lexer, CodeTokenCountExcludesDirectivesAndEof) {
  const auto toks = lex("#include <stdio.h>\nint main;");
  EXPECT_EQ(code_token_count(toks), 3u);  // int main ;
}

struct OperatorCase {
  const char* source;
  std::vector<std::string> expected;
};

class OperatorLexing : public ::testing::TestWithParam<OperatorCase> {};

TEST_P(OperatorLexing, MaximalMunch) {
  const auto& param = GetParam();
  const auto toks = lex(param.source);
  ASSERT_EQ(toks.size(), param.expected.size() + 1) << param.source;
  for (std::size_t i = 0; i < param.expected.size(); ++i) {
    EXPECT_EQ(toks[i].text, param.expected[i]) << param.source;
    EXPECT_EQ(toks[i].kind, TokenKind::kPunct);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Operators, OperatorLexing,
    ::testing::Values(
        OperatorCase{"++", {"++"}}, OperatorCase{"--", {"--"}},
        OperatorCase{"->", {"->"}}, OperatorCase{"<<=", {"<<="}},
        OperatorCase{">>=", {">>="}}, OperatorCase{"<=", {"<="}},
        OperatorCase{">=", {">="}}, OperatorCase{"==", {"=="}},
        OperatorCase{"!=", {"!="}}, OperatorCase{"&&", {"&&"}},
        OperatorCase{"||", {"||"}}, OperatorCase{"+=", {"+="}},
        OperatorCase{"-=", {"-="}}, OperatorCase{"*=", {"*="}},
        OperatorCase{"/=", {"/="}}, OperatorCase{"%=", {"%="}},
        OperatorCase{"&=", {"&="}}, OperatorCase{"|=", {"|="}},
        OperatorCase{"^=", {"^="}},
        OperatorCase{"+++", {"++", "+"}},
        OperatorCase{"<<<", {"<<", "<"}}));

TEST(Lexer, PlusPlusPlusB) {
  const auto toks = lex("a+++b");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[1].text, "++");
  EXPECT_EQ(toks[2].text, "+");
}

TEST(Lexer, UnknownCharacterThrows) {
  EXPECT_THROW(lex("int $x;"), Error);
  EXPECT_THROW(lex("x @ y"), Error);
}

TEST(Lexer, AllSinglePunct) {
  const std::string punct = "+ - * / % = < > ! & | ^ ~ ? : ; , . ( ) [ ] { }";
  const auto toks = lex(punct);
  EXPECT_EQ(toks.size(), 25u);  // 24 + EOF
}

}  // namespace
}  // namespace mpirical::lex
