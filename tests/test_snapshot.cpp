// Snapshot container + zero-copy storage unit and robustness suite.
//
// Covers the format layer (Builder/Snapshot round trips, 64-byte alignment,
// checksums), the fuzz/robustness properties the shard deployment depends
// on (truncated headers, bad checksums, section tables pointing past EOF,
// version skew, and MR_SEEDED_RNG random slicing/corruption -- every bad
// input must throw Error with a diagnostic, never crash), the tensor
// non-owning Storage mode (zero-copy views, owner lifetime, copy-on-write),
// the domain payload round trips (vocab, corpus examples), the legacy
// checkpoint's string_view parsing + garbage rejection, and support/io.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "corpus/dataset.hpp"
#include "nn/transformer.hpp"
#include "snapshot/snapshot.hpp"
#include "support/check.hpp"
#include "support/io.hpp"
#include "tensor/tensor.hpp"
#include "testing.hpp"
#include "toklib/vocab.hpp"

namespace mpirical {
namespace {

using snapshot::Builder;
using snapshot::ByteReader;
using snapshot::ByteWriter;
using snapshot::SectionKind;
using snapshot::Snapshot;

std::string valid_image() {
  Builder b;
  b.add(SectionKind::kMeta, "alpha", "first section payload");
  b.add(SectionKind::kTensorData, "t0", std::string(100, '\x7f'));
  b.add(SectionKind::kCorpus, "empty", "");
  return b.finish();
}

void patch_u64(std::string& buf, std::size_t pos, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf[pos + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

void patch_u32(std::string& buf, std::size_t pos, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf[pos + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

/// Restamps the header's table checksum after a deliberate table patch, so
/// tests reach the validation AFTER the checksum (bounds checks etc.).
void restamp_table_checksum(std::string& buf) {
  const std::uint32_t count =
      static_cast<std::uint8_t>(buf[16]) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[17])) << 8) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[18])) << 16) |
      (static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[19])) << 24);
  patch_u64(buf, 24,
            snapshot::fnv1a64(buf.data() + snapshot::kHeaderSize,
                              count * snapshot::kSectionEntrySize));
}

TEST(SnapshotFormat, BuilderRoundTrip) {
  const std::string image = valid_image();
  const auto snap = Snapshot::from_bytes(image);
  ASSERT_EQ(snap->section_count(), 3u);
  EXPECT_EQ(snap->section(0).kind, SectionKind::kMeta);
  EXPECT_EQ(snap->section(0).name, "alpha");
  EXPECT_EQ(snap->section(0).payload, "first section payload");
  EXPECT_EQ(snap->section(1).name, "t0");
  EXPECT_EQ(snap->section(1).payload.size(), 100u);
  EXPECT_EQ(snap->section(2).payload.size(), 0u);
  EXPECT_EQ(snap->total_bytes(), image.size());
  EXPECT_NE(snap->find(SectionKind::kTensorData, "t0"), nullptr);
  EXPECT_EQ(snap->find(SectionKind::kTensorData, "missing"), nullptr);
  EXPECT_THROW(snap->require(SectionKind::kVocab), Error);
}

TEST(SnapshotFormat, SectionOffsetsAre64ByteAligned) {
  const std::string image = valid_image();
  const auto snap = Snapshot::from_bytes(image);
  // The first payload sits at align_up(header + table); every later one is
  // a multiple of 64 further in (verified via pointer distance within the
  // snapshot's buffer).
  const std::size_t first =
      (snapshot::kHeaderSize +
       snap->section_count() * snapshot::kSectionEntrySize +
       snapshot::kAlign - 1) &
      ~(snapshot::kAlign - 1);
  EXPECT_EQ(first % snapshot::kAlign, 0u);
  const char* base = snap->section(0).payload.data() - first;
  for (std::size_t i = 0; i < snap->section_count(); ++i) {
    const auto& s = snap->section(i);
    if (s.payload.empty()) continue;
    EXPECT_EQ(static_cast<std::size_t>(s.payload.data() - base) %
                  snapshot::kAlign,
              0u)
        << "section " << i;
  }
}

TEST(SnapshotFormat, MappedFileIsAbsolutelyAligned) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/snap_align.mpsn";
  io::write_file(path, valid_image());
  const auto snap = Snapshot::map_file(path);
  ASSERT_TRUE(snap->is_mapped());
  for (std::size_t i = 0; i < snap->section_count(); ++i) {
    const auto& s = snap->section(i);
    if (s.payload.empty()) continue;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.payload.data()) %
                  snapshot::kAlign,
              0u)
        << "section " << i;
  }
  std::filesystem::remove(path);
}

TEST(SnapshotFormat, RejectsEmptyAndTruncatedHeader) {
  EXPECT_THROW(Snapshot::from_bytes(""), Error);
  const std::string image = valid_image();
  for (const std::size_t cut : {1u, 4u, 16u, 40u, 63u}) {
    EXPECT_THROW(Snapshot::from_bytes(image.substr(0, cut)), Error)
        << "cut at " << cut;
  }
}

TEST(SnapshotFormat, RejectsBadMagic) {
  std::string image = valid_image();
  image[0] = 'X';
  EXPECT_THROW(Snapshot::from_bytes(image), Error);
}

TEST(SnapshotFormat, RejectsVersionSkew) {
  std::string image = valid_image();
  patch_u32(image, 4, snapshot::kVersion + 1);
  try {
    Snapshot::from_bytes(image);
    FAIL() << "version skew accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(SnapshotFormat, RejectsFileSizeMismatch) {
  std::string image = valid_image();
  image.push_back('\0');  // grow the file without touching the header
  EXPECT_THROW(Snapshot::from_bytes(image), Error);
}

TEST(SnapshotFormat, RejectsAbsurdSectionCount) {
  std::string image = valid_image();
  patch_u32(image, 16, 0x00FFFFFF);
  EXPECT_THROW(Snapshot::from_bytes(image), Error);
}

TEST(SnapshotFormat, RejectsTableCorruption) {
  std::string image = valid_image();
  image[snapshot::kHeaderSize + 8] ^= 0x01;  // first entry's offset
  EXPECT_THROW(Snapshot::from_bytes(image), Error);
}

TEST(SnapshotFormat, RejectsSectionPointingPastEof) {
  std::string image = valid_image();
  // Point section 1 past the end (64-aligned so the alignment check passes),
  // then restamp the table checksum so the BOUNDS check is what fires.
  const std::size_t entry =
      snapshot::kHeaderSize + 1 * snapshot::kSectionEntrySize;
  patch_u64(image, entry + 8, (image.size() + 4096) & ~std::size_t{63});
  restamp_table_checksum(image);
  try {
    Snapshot::from_bytes(image);
    FAIL() << "out-of-bounds section accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("past end"), std::string::npos);
  }
}

TEST(SnapshotFormat, RejectsMisalignedSection) {
  std::string image = valid_image();
  const std::size_t entry = snapshot::kHeaderSize;
  // +4: still in bounds, no longer 64-aligned.
  const std::uint64_t off =
      static_cast<std::uint64_t>(snapshot::kHeaderSize +
                                 3 * snapshot::kSectionEntrySize) +
      4;
  patch_u64(image, entry + 8, off);
  restamp_table_checksum(image);
  EXPECT_THROW(Snapshot::from_bytes(image), Error);
}

TEST(SnapshotFormat, RejectsPayloadCorruption) {
  std::string image = valid_image();
  const auto snap = Snapshot::from_bytes(image);  // find a payload offset
  const std::ptrdiff_t off =
      snap->section(1).payload.data() - snap->section(0).payload.data();
  // Recompute section 1's file offset from section 0's (both aligned).
  const std::size_t base =
      (snapshot::kHeaderSize + 3 * snapshot::kSectionEntrySize +
       snapshot::kAlign - 1) &
      ~(snapshot::kAlign - 1);
  image[base + static_cast<std::size_t>(off) + 50] ^= 0x40;
  try {
    Snapshot::from_bytes(image);
    FAIL() << "payload corruption accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST(SnapshotFormat, RandomTruncationNeverCrashes) {
  MR_SEEDED_RNG(rng, 0x534E4150);
  const std::string image = valid_image();
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t cut =
        static_cast<std::size_t>(rng.next_below(image.size()));
    try {
      Snapshot::from_bytes(image.substr(0, cut));
      // A strict prefix must never validate: the header's file_size pins
      // the full length.
      ADD_FAILURE() << "truncated snapshot (cut " << cut << ") accepted";
    } catch (const Error&) {
      // expected: rejected with a diagnostic
    }
  }
}

TEST(SnapshotFormat, RandomCorruptionNeverCrashes) {
  MR_SEEDED_RNG(rng, 0x534E4151);
  const std::string image = valid_image();
  for (int iter = 0; iter < 200; ++iter) {
    std::string bad = image;
    const std::size_t pos =
        static_cast<std::size_t>(rng.next_below(bad.size()));
    const char flip =
        static_cast<char>(1 + rng.next_below(255));
    bad[pos] = static_cast<char>(bad[pos] ^ flip);
    try {
      const auto snap = Snapshot::from_bytes(bad);
      // Flips in inter-section padding are outside every checksum; anything
      // else must throw. Either way: no crash, and a validated snapshot
      // still parses consistently.
      EXPECT_EQ(snap->section_count(), 3u);
    } catch (const Error&) {
      // expected for flips in header/table/payload bytes
    }
  }
}

// ---- lazy per-section verification ------------------------------------------

/// File offset of section `idx`'s payload, recomputed from the table.
std::uint64_t read_u64_at(const std::string& buf, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(buf[pos + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::size_t section_entry(std::size_t idx) {
  return snapshot::kHeaderSize + idx * snapshot::kSectionEntrySize;
}

/// Restamps section `idx`'s payload checksum (and the table checksum) after
/// a deliberate payload/size patch, so tests reach the validation AFTER the
/// checksums -- the structural checks in the quantized-section reader.
void restamp_section_checksum(std::string& buf, std::size_t idx) {
  const std::size_t entry = section_entry(idx);
  const auto off = static_cast<std::size_t>(read_u64_at(buf, entry + 8));
  const auto size = static_cast<std::size_t>(read_u64_at(buf, entry + 16));
  patch_u64(buf, entry + 24, snapshot::fnv1a64(buf.data() + off, size));
  restamp_table_checksum(buf);
}

TEST(SnapshotLazyVerify, EagerDefaultRejectsCorruptionAtOpen) {
  testutil::ScopedEnv eager("MPIRICAL_SNAPSHOT_VERIFY", nullptr);
  std::string image = valid_image();
  const std::size_t off =
      static_cast<std::size_t>(read_u64_at(image, section_entry(1) + 8));
  image[off + 50] ^= 0x40;
  EXPECT_THROW(Snapshot::from_bytes(image), Error);
}

TEST(SnapshotLazyVerify, CorruptSectionCaughtOnFirstView) {
  testutil::ScopedEnv lazy("MPIRICAL_SNAPSHOT_VERIFY", "lazy");
  std::string image = valid_image();
  const std::size_t off =
      static_cast<std::size_t>(read_u64_at(image, section_entry(1) + 8));
  image[off + 50] ^= 0x40;
  // Lazy mode defers payload checksums: the open succeeds (header and table
  // are still verified eagerly)...
  const auto snap = Snapshot::from_bytes(image);
  ASSERT_EQ(snap->section_count(), 3u);
  // ...intact sections verify fine on access...
  EXPECT_EQ(snap->section(0).payload, "first section payload");
  EXPECT_EQ(snap->section(2).payload.size(), 0u);
  // ...and the FIRST view of the corrupt one throws, through every accessor.
  EXPECT_THROW(snap->section(1), Error);
  EXPECT_THROW(snap->find(SectionKind::kTensorData, "t0"), Error);
  EXPECT_THROW(snap->require(SectionKind::kTensorData, "t0"), Error);
  try {
    snap->section(1);
    FAIL() << "corrupt section viewed without a diagnostic";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST(SnapshotLazyVerify, CleanImageVerifiesOncePerSection) {
  testutil::ScopedEnv lazy("MPIRICAL_SNAPSHOT_VERIFY", "lazy");
  const auto snap = Snapshot::from_bytes(valid_image());
  // Repeated access is fine (the verified flag latches; this would be
  // quadratic otherwise) and the contents match the eager open's.
  for (int pass = 0; pass < 3; ++pass) {
    EXPECT_EQ(snap->section(0).payload, "first section payload");
    EXPECT_EQ(snap->section(1).payload.size(), 100u);
    EXPECT_NE(snap->find(SectionKind::kCorpus, "empty"), nullptr);
  }
  // Table/header corruption is still caught at open even in lazy mode.
  std::string image = valid_image();
  image[snapshot::kHeaderSize + 8] ^= 0x01;
  EXPECT_THROW(Snapshot::from_bytes(image), Error);
}

// ---- quantized tensor sections ----------------------------------------------

/// A tiny random transformer serialized with int8 weight sections: the
/// fuzz surface for the kTensorDataI8 reader.
const std::string& quantized_model_image() {
  static const std::string* image = [] {
    MR_SEEDED_RNG(rng, 0x51384D49);
    nn::TransformerConfig cfg;
    cfg.vocab_size = 40;
    cfg.d_model = 24;
    cfg.heads = 4;
    cfg.ffn_dim = 48;
    cfg.encoder_layers = 1;
    cfg.decoder_layers = 1;
    cfg.max_len = 64;
    cfg.dropout = 0.0f;
    nn::Transformer model(cfg, rng);
    Builder b;
    model.to_snapshot(b, /*quantize_weights=*/true);
    return new std::string(b.finish());
  }();
  return *image;
}

std::size_t find_section_of_kind(const std::string& buf, SectionKind kind) {
  const auto snap = Snapshot::from_bytes(buf);
  for (std::size_t i = 0; i < snap->section_count(); ++i) {
    if (snap->section(i).kind == kind) return i;
  }
  ADD_FAILURE() << "no section of kind " << static_cast<int>(kind);
  return 0;
}

nn::Transformer load_model(const std::string& image) {
  const auto snap = Snapshot::from_bytes(image);
  return nn::Transformer::from_view(*snap, snapshot::owner_of(snap));
}

TEST(SnapshotQuantFuzz, QuantizedImageLoadsClean) {
  const nn::Transformer model = load_model(quantized_model_image());
  EXPECT_EQ(model.config().d_model, 24);
}

TEST(SnapshotQuantFuzz, RejectsTruncatedI8Payload) {
  const std::size_t idx =
      find_section_of_kind(quantized_model_image(), SectionKind::kTensorDataI8);
  // Shave bytes off the declared size (checksums restamped so the exact
  // payload-length validation in the reader is what fires), including a cut
  // into the scale vector and one below the 8-byte dims header.
  for (const std::size_t shave : {1u, 3u, 64u}) {
    std::string image = quantized_model_image();
    const std::size_t entry = section_entry(idx);
    const auto size = read_u64_at(image, entry + 16);
    ASSERT_GT(size, shave);
    patch_u64(image, entry + 16, size - shave);
    restamp_section_checksum(image, idx);
    EXPECT_THROW(load_model(image), Error) << "shave " << shave;
  }
  {
    std::string image = quantized_model_image();
    patch_u64(image, section_entry(idx) + 16, 4);  // cuts into the dims header
    restamp_section_checksum(image, idx);
    EXPECT_THROW(load_model(image), Error);
  }
}

TEST(SnapshotQuantFuzz, RejectsDimsScalePayloadMismatch) {
  const std::size_t idx =
      find_section_of_kind(quantized_model_image(), SectionKind::kTensorDataI8);
  const std::size_t payload = static_cast<std::size_t>(
      read_u64_at(quantized_model_image(), section_entry(idx) + 8));
  // A forged cols count desynchronizes the declared scale-vector length from
  // the payload (and from the parameter's shape): loudly rejected either way.
  for (const std::uint32_t cols : {0u, 1u, 23u, 25u, 0xFFFFu}) {
    std::string image = quantized_model_image();
    patch_u32(image, payload + 4, cols);
    restamp_section_checksum(image, idx);
    EXPECT_THROW(load_model(image), Error) << "cols " << cols;
  }
  {
    std::string image = quantized_model_image();
    patch_u32(image, payload + 0, 7);  // rows that contradict the parameter
    restamp_section_checksum(image, idx);
    EXPECT_THROW(load_model(image), Error);
  }
}

TEST(SnapshotQuantFuzz, RejectsCorruptedScales) {
  const std::size_t idx =
      find_section_of_kind(quantized_model_image(), SectionKind::kTensorDataI8);
  const std::size_t payload = static_cast<std::size_t>(
      read_u64_at(quantized_model_image(), section_entry(idx) + 8));
  // NaN, +inf, zero, and negative scales: every one must be refused (a NaN
  // scale would silently poison the whole output column downstream).
  for (const std::uint32_t bits : {0x7FC00000u, 0x7F800000u, 0u, 0xBF800000u}) {
    std::string image = quantized_model_image();
    patch_u32(image, payload + 8, bits);  // scales[0]
    restamp_section_checksum(image, idx);
    try {
      load_model(image);
      FAIL() << "corrupt scale bits " << bits << " accepted";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("scale"), std::string::npos);
    }
  }
}

TEST(SnapshotQuantFuzz, RejectsKindSkewBothDirections) {
  // A reader seeing the WRONG kind for a tensor section -- the version-skew
  // shape of the failure -- must throw, not reinterpret bytes: an int8
  // payload is not a plausible f32 tensor (size mismatch) and vice versa.
  {
    std::string image = quantized_model_image();
    const std::size_t idx =
        find_section_of_kind(image, SectionKind::kTensorDataI8);
    patch_u32(image, section_entry(idx) + 0,
              static_cast<std::uint32_t>(SectionKind::kTensorData));
    restamp_table_checksum(image);
    EXPECT_THROW(load_model(image), Error);
  }
  {
    // tok_embed stays f32 even in a quantized image; stamping it as int8
    // must be rejected (it is not a Linear weight, and its bytes are not a
    // valid i8 payload).
    std::string image = quantized_model_image();
    const std::size_t idx =
        find_section_of_kind(image, SectionKind::kTensorData);
    patch_u32(image, section_entry(idx) + 0,
              static_cast<std::uint32_t>(SectionKind::kTensorDataI8));
    restamp_table_checksum(image);
    EXPECT_THROW(load_model(image), Error);
  }
}

TEST(SnapshotQuantFuzz, RandomI8SectionCorruptionNeverCrashes) {
  MR_SEEDED_RNG(rng, 0x51384652);
  const std::size_t idx =
      find_section_of_kind(quantized_model_image(), SectionKind::kTensorDataI8);
  const std::size_t entry = section_entry(idx);
  const std::size_t payload =
      static_cast<std::size_t>(read_u64_at(quantized_model_image(), entry + 8));
  const std::size_t size =
      static_cast<std::size_t>(read_u64_at(quantized_model_image(), entry + 16));
  for (int iter = 0; iter < 60; ++iter) {
    std::string image = quantized_model_image();
    // Random byte flips inside the quantized payload, checksums restamped so
    // the flip reaches the reader: loads or throws, never UB. (Flips in the
    // int8 weight bytes themselves legitimately still load.)
    const std::size_t pos =
        payload + static_cast<std::size_t>(rng.next_below(size));
    image[pos] = static_cast<char>(
        image[pos] ^ static_cast<char>(1 + rng.next_below(255)));
    restamp_section_checksum(image, idx);
    try {
      const nn::Transformer model = load_model(image);
      (void)model;
    } catch (const Error&) {
      // expected for flips in dims/scales
    }
  }
}

// ---- byte reader/writer -----------------------------------------------------

TEST(SnapshotBytes, WriterReaderRoundTrip) {
  ByteWriter w;
  w.u8(7);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-42);
  w.f32(3.5f);
  w.f64(-0.0);
  w.bytes("hello\0world");  // embedded NUL would be cut by the literal; fine
  ByteReader r(w.str());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.f32(), 3.5f);
  EXPECT_EQ(testutil::double_bits(r.f64()), testutil::double_bits(-0.0));
  EXPECT_EQ(r.bytes(), "hello");
  r.done();
}

TEST(SnapshotBytes, ReaderRejectsTruncation) {
  ByteWriter w;
  w.u64(1);
  w.bytes("payload");
  const std::string full = w.str();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    ByteReader r(std::string_view(full).substr(0, cut));
    EXPECT_THROW(
        {
          r.u64();
          r.bytes();
          r.done();
        },
        Error)
        << "cut at " << cut;
  }
}

// ---- tensor non-owning storage ----------------------------------------------

TEST(TensorView, ZeroCopyAndOwnerLifetime) {
  auto buf = std::make_shared<std::vector<float>>(
      std::vector<float>{1, 2, 3, 4, 5, 6});
  const float* raw = buf->data();
  tensor::Tensor t = tensor::Tensor::from_view({2, 3}, raw, buf);
  EXPECT_TRUE(t.value().is_view());
  EXPECT_EQ(t.value().cdata(), raw);  // zero-copy: same pointer
  std::weak_ptr<std::vector<float>> watch = buf;
  buf.reset();
  EXPECT_FALSE(watch.expired());  // the tensor's owner handle pins it
  EXPECT_EQ(t.value()[4], 5.0f);
  t = tensor::Tensor();
  EXPECT_TRUE(watch.expired());  // releasing the tensor releases the buffer
}

TEST(TensorView, CopyOnWriteMaterializes) {
  auto buf = std::make_shared<std::vector<float>>(std::vector<float>{1, 2});
  tensor::Tensor t = tensor::Tensor::from_view({2}, buf->data(), buf);
  const tensor::Tensor& ct = t;
  EXPECT_EQ(ct.value().cdata(), buf->data());
  // First MUTABLE access detaches from the view.
  t.value().data()[0] = 99.0f;
  EXPECT_FALSE(t.value().is_view());
  EXPECT_NE(ct.value().cdata(), buf->data());
  EXPECT_EQ((*buf)[0], 1.0f);  // foreign memory untouched
  EXPECT_EQ(ct.value()[0], 99.0f);
  EXPECT_EQ(ct.value()[1], 2.0f);  // contents carried over
}

TEST(TensorView, ViewFeedsOpsLikeOwnedStorage) {
  auto buf = std::make_shared<std::vector<float>>(
      std::vector<float>{1, 2, 3, 4});
  tensor::Tensor v = tensor::Tensor::from_view({2, 2}, buf->data(), buf);
  tensor::Tensor o = tensor::Tensor::from_data({2, 2}, *buf);
  const tensor::Tensor pv = tensor::matmul(v, v);
  const tensor::Tensor po = tensor::matmul(o, o);
  EXPECT_EQ(pv.value(), po.value());
}

TEST(TensorView, SetViewRejectsSizeMismatch) {
  auto buf = std::make_shared<std::vector<float>>(std::vector<float>{1, 2});
  tensor::Tensor t = tensor::Tensor::zeros({3});
  EXPECT_THROW(t.set_view(buf->data(), 2, buf), Error);
}

// ---- domain payloads --------------------------------------------------------

TEST(SnapshotDomain, VocabRoundTrip) {
  tok::Vocab vocab;
  vocab.add("int");
  vocab.add("main");
  vocab.add("MPI_Allreduce");
  ByteWriter w;
  vocab.to_snapshot(w);
  const tok::Vocab back = tok::Vocab::from_view(w.str());
  ASSERT_EQ(back.size(), vocab.size());
  for (tok::TokenId id = 0; id < static_cast<tok::TokenId>(vocab.size());
       ++id) {
    EXPECT_EQ(back.text_of(id), vocab.text_of(id));
  }
  EXPECT_EQ(back.id_of("MPI_Allreduce"), vocab.id_of("MPI_Allreduce"));
}

TEST(SnapshotDomain, VocabRejectsGarbage) {
  EXPECT_THROW(tok::Vocab::from_view("garbage"), Error);
  ByteWriter w;
  w.u32(1000);  // forged count, no payload behind it
  EXPECT_THROW(tok::Vocab::from_view(w.str()), Error);
}

TEST(SnapshotDomain, CorpusExamplesRoundTrip) {
  std::vector<corpus::Example> examples(2);
  examples[0].id = 7;
  examples[0].family = corpus::Family::kHalo1D;
  examples[0].label_code = "int main() {\n  return 0;\n}\n";
  examples[0].input_code = "int main() { return 0; }";
  examples[0].input_xsbt = "<tu> <fn> </fn> </tu>";
  examples[0].ground_truth.push_back({"MPI_Init", 2});
  examples[0].ground_truth.push_back({"MPI_Finalize", 3});
  examples[0].label_token_count = 11;
  examples[1].id = 8;
  examples[1].family = corpus::Family::kSerialUtility;

  ByteWriter w;
  corpus::encode_examples(w, examples);
  const auto back = corpus::decode_examples(w.str());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, 7);
  EXPECT_EQ(back[0].family, corpus::Family::kHalo1D);
  EXPECT_EQ(back[0].label_code, examples[0].label_code);
  EXPECT_EQ(back[0].input_code, examples[0].input_code);
  EXPECT_EQ(back[0].input_xsbt, examples[0].input_xsbt);
  ASSERT_EQ(back[0].ground_truth.size(), 2u);
  EXPECT_EQ(back[0].ground_truth[1].callee, "MPI_Finalize");
  EXPECT_EQ(back[0].ground_truth[1].line, 3);
  EXPECT_EQ(back[0].label_token_count, 11u);
  EXPECT_EQ(back[1].family, corpus::Family::kSerialUtility);
}

TEST(SnapshotDomain, CorpusExamplesRejectGarbage) {
  EXPECT_THROW(corpus::decode_examples("xy"), Error);
  ByteWriter w;
  w.u32(0xFFFFFF);
  EXPECT_THROW(corpus::decode_examples(w.str()), Error);
}

// ---- support/io -------------------------------------------------------------

TEST(SupportIo, RoundTripAndErrors) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/io_roundtrip.bin";
  const std::string payload("\x00\x01binary\xFFpayload", 16);
  io::write_file(path, payload);
  EXPECT_TRUE(io::file_exists(path));
  EXPECT_EQ(io::read_file(path), payload);
  EXPECT_EQ(io::read_prefix(path, 4), payload.substr(0, 4));
  EXPECT_EQ(io::read_prefix(path, 1024), payload);
  std::filesystem::remove(path);

  EXPECT_FALSE(io::file_exists(dir + "/does_not_exist"));
  EXPECT_THROW(io::read_file(dir + "/does_not_exist"), Error);
  EXPECT_TRUE(io::read_prefix(dir + "/does_not_exist", 4).empty());
  try {
    io::read_file(dir + "/does_not_exist");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("does_not_exist"),
              std::string::npos)
        << "diagnostic must name the path";
  }
  EXPECT_THROW(io::write_file(dir + "/no_such_dir/x", "data"), Error);
}

}  // namespace
}  // namespace mpirical
