// Snapshot differential suite: the mmap-loaded (zero-copy) model must be
// indistinguishable -- BITWISE -- from the legacy text-checkpoint path.
//
//  * save -> mmap-load -> save yields byte-identical snapshot files;
//  * greedy and beam-4 decodes are token-identical between the
//    legacy-loaded and snapshot-loaded model;
//  * the merged EvalSummary from sharded evaluation (shards {1,2,3}) of the
//    mmap-loaded model is bit-identical to the unsharded legacy-loaded
//    oracle (extending the PR 3 / PR 4 bitwise discipline across the
//    persistence boundary);
//  * the shard driver/worker snapshot handshake (kSnapshot path-over-pipe +
//    kStartupInfo) produces the same merged summary over a loopback
//    transport, with the worker world coming from the mmap'd file.
//
// Standalone binary (like test_shard_equivalence): it builds models, which
// is the slow part of the main test binary's link-iterate loop.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluate.hpp"
#include "core/model.hpp"
#include "core/world_snapshot.hpp"
#include "corpus/dataset.hpp"
#include "shard/eval.hpp"
#include "snapshot/snapshot.hpp"
#include "support/io.hpp"
#include "testing.hpp"

namespace mpirical {
namespace {

using testutil::double_bits;
using testutil::ScopedEnv;

/// One tiny untrained model + dataset shared by every test: decode is
/// deterministic for fixed weights, and random weights exercise the full
/// persistence/decode/score path without paying for training.
struct Harness {
  corpus::Dataset dataset;
  core::MpiRical model;
  std::vector<corpus::Example> examples;
};

const Harness& harness() {
  static const Harness* h = [] {
    corpus::DatasetConfig dcfg;
    dcfg.corpus_size = 300;
    dcfg.seed = 173;
    dcfg.max_tokens = 170;

    core::ModelConfig mcfg;
    mcfg.d_model = 32;
    mcfg.heads = 2;
    mcfg.ffn_dim = 64;
    mcfg.encoder_layers = 1;
    mcfg.decoder_layers = 1;
    mcfg.dropout = 0.0f;
    mcfg.max_src_tokens = 256;
    mcfg.max_tgt_tokens = 40;  // bound decode length for an untrained model
    mcfg.seed = 2027;

    auto* built = new Harness;
    built->dataset = corpus::build_dataset(dcfg);
    built->model = core::MpiRical::create(built->dataset, mcfg);
    built->examples = built->dataset.test;
    for (const auto& ex : built->dataset.train) {
      if (built->examples.size() >= 12) break;
      built->examples.push_back(ex);
    }
    return built;
  }();
  return *h;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::string> decode_all(const core::MpiRical& model,
                                    int beam_width) {
  std::vector<core::MpiRical::TranslateRequest> reqs;
  for (const auto& ex : harness().examples) {
    reqs.push_back({ex.input_code, ex.input_xsbt});
  }
  return model.translate_batch(reqs, beam_width);
}

void expect_identical(const core::EvalSummary& a, const core::EvalSummary& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.examples, b.examples);
  EXPECT_TRUE(a.m_counts == b.m_counts);
  EXPECT_TRUE(a.mcc_counts == b.mcc_counts);
  EXPECT_EQ(double_bits(a.bleu), double_bits(b.bleu));
  EXPECT_EQ(double_bits(a.meteor), double_bits(b.meteor));
  EXPECT_EQ(double_bits(a.rouge_l), double_bits(b.rouge_l));
  EXPECT_EQ(double_bits(a.acc), double_bits(b.acc));
}

TEST(SnapshotEquivalence, SaveLoadSaveIsByteIdentical) {
  const std::string path1 = temp_path("model_a.mpsn");
  const std::string path2 = temp_path("model_b.mpsn");
  ScopedEnv on("MPIRICAL_SNAPSHOT", nullptr);  // default: enabled
  harness().model.save(path1);
  const core::MpiRical loaded = core::MpiRical::load(path1);
  loaded.save(path2);
  EXPECT_EQ(io::read_file(path1), io::read_file(path2));
  // And the in-memory image matches the files exactly.
  EXPECT_EQ(harness().model.serialize_snapshot(), io::read_file(path1));
  std::filesystem::remove(path1);
  std::filesystem::remove(path2);
}

TEST(SnapshotEquivalence, LegacyAndSnapshotLoadedModelsSerializeIdentically) {
  const core::MpiRical legacy =
      core::MpiRical::deserialize(harness().model.serialize());
  const auto snap =
      snapshot::Snapshot::from_bytes(harness().model.serialize_snapshot());
  const core::MpiRical mapped = core::MpiRical::from_snapshot(snap);
  EXPECT_EQ(legacy.serialize(), mapped.serialize());
  EXPECT_EQ(legacy.serialize_snapshot(), mapped.serialize_snapshot());
}

TEST(SnapshotEquivalence, MmapLoadedDecodesBitIdenticalGreedyAndBeam) {
  const std::string path = temp_path("decode_model.mpsn");
  io::write_file(path, harness().model.serialize_snapshot());
  const core::MpiRical mapped = core::MpiRical::load(path);
  const core::MpiRical legacy =
      core::MpiRical::deserialize(harness().model.serialize());

  for (const int beam : {1, 4}) {
    SCOPED_TRACE("beam " + std::to_string(beam));
    const auto from_legacy = decode_all(legacy, beam);
    const auto from_mapped = decode_all(mapped, beam);
    ASSERT_EQ(from_legacy.size(), from_mapped.size());
    for (std::size_t i = 0; i < from_legacy.size(); ++i) {
      EXPECT_EQ(from_legacy[i], from_mapped[i]) << "example " << i;
    }
  }
  std::filesystem::remove(path);
}

TEST(SnapshotEquivalence, ShardedEvalFromMmapMatchesLegacyOracleBitwise) {
  const std::string path = temp_path("sharded_model.mpsn");
  io::write_file(path, harness().model.serialize_snapshot());
  const core::MpiRical mapped = core::MpiRical::load(path);
  const core::MpiRical legacy =
      core::MpiRical::deserialize(harness().model.serialize());

  ScopedEnv wave("MPIRICAL_DECODE_WAVE", "3");
  ScopedEnv no_shards("MPIRICAL_EVAL_SHARDS", nullptr);
  const auto& split = harness().examples;

  for (const int beam : {1, 4}) {
    std::vector<core::ExamplePrediction> oracle_preds;
    const core::EvalSummary oracle =
        core::evaluate_model(legacy, split, beam, 1, &oracle_preds);
    for (const std::size_t shards : {1u, 2u, 3u}) {
      shard::ShardOptions options;
      options.shards = shards;
      options.beam_width = beam;
      std::vector<core::ExamplePrediction> preds;
      const core::EvalSummary merged = shard::evaluate_sharded_inprocess(
          mapped, split, options, &preds);
      const std::string what = "beam=" + std::to_string(beam) +
                               " shards=" + std::to_string(shards);
      expect_identical(merged, oracle, what);
      ASSERT_EQ(preds.size(), oracle_preds.size()) << what;
      for (std::size_t i = 0; i < preds.size(); ++i) {
        EXPECT_EQ(preds[i].predicted_code, oracle_preds[i].predicted_code)
            << what << " example " << i;
      }
    }
  }
  std::filesystem::remove(path);
}

TEST(SnapshotEquivalence, LegacyDeserializeRejectsGarbageAndTruncation) {
  // Regression for the old substr-slicing loader: a truncated or
  // garbage-magic blob must throw Error with a diagnostic -- never crash,
  // never allocate from forged sizes.
  EXPECT_THROW(core::MpiRical::deserialize(""), Error);
  EXPECT_THROW(core::MpiRical::deserialize("not a checkpoint at all"), Error);
  EXPECT_THROW(core::MpiRical::deserialize(std::string(4096, '\xEE')), Error);

  const std::string blob = harness().model.serialize();
  MR_SEEDED_RNG(rng, 0x4C454741);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t cut =
        static_cast<std::size_t>(rng.next_below(blob.size()));
    EXPECT_THROW(core::MpiRical::deserialize(
                     std::string_view(blob).substr(0, cut)),
                 Error)
        << "cut at " << cut;
  }
  // Random single-byte corruption: rejected or parsed -- never UB. (Flips
  // in weight bytes legitimately still parse; flips in structure fields
  // must throw, not crash.)
  for (int iter = 0; iter < 40; ++iter) {
    std::string bad = blob;
    bad[static_cast<std::size_t>(rng.next_below(bad.size()))] ^=
        static_cast<char>(1 + rng.next_below(255));
    try {
      const core::MpiRical m = core::MpiRical::deserialize(bad);
      (void)m;
    } catch (const Error&) {
      // expected for structural corruption
    }
  }
  // The happy path still round-trips.
  const core::MpiRical back = core::MpiRical::deserialize(blob);
  EXPECT_EQ(back.serialize(), blob);
}

TEST(SnapshotEquivalence, LoadAutoDetectsFormatByMagic) {
  const std::string snap_path = temp_path("auto_snap.ckpt");
  const std::string legacy_path = temp_path("auto_legacy.ckpt");
  {
    ScopedEnv on("MPIRICAL_SNAPSHOT", nullptr);
    harness().model.save(snap_path);
  }
  {
    ScopedEnv off("MPIRICAL_SNAPSHOT", "0");
    harness().model.save(legacy_path);
  }
  const std::string snap_magic = io::read_prefix(snap_path, 4);
  EXPECT_TRUE(snapshot::has_snapshot_magic(snap_magic));
  EXPECT_FALSE(snapshot::has_snapshot_magic(io::read_prefix(legacy_path, 4)));
  // Both load through the same entry point and describe the same model.
  const core::MpiRical a = core::MpiRical::load(snap_path);
  const core::MpiRical b = core::MpiRical::load(legacy_path);
  EXPECT_EQ(a.serialize(), b.serialize());
  std::filesystem::remove(snap_path);
  std::filesystem::remove(legacy_path);
}

TEST(SnapshotEquivalence, WorldSnapshotRoundTripsDatasetShape) {
  const std::string path = temp_path("world_dataset.mpsn");
  core::write_dataset_snapshot(path, harness().model, harness().dataset);
  const core::World world = core::load_world_snapshot(path);
  EXPECT_TRUE(world.has_dataset);
  EXPECT_FALSE(world.has_eval);
  EXPECT_EQ(world.dataset.train.size(), harness().dataset.train.size());
  EXPECT_EQ(world.dataset.val.size(), harness().dataset.val.size());
  EXPECT_EQ(world.dataset.test.size(), harness().dataset.test.size());
  EXPECT_EQ(world.dataset.total_programs, harness().dataset.total_programs);
  EXPECT_EQ(world.dataset.excluded_too_long,
            harness().dataset.excluded_too_long);
  ASSERT_FALSE(world.dataset.test.empty());
  EXPECT_EQ(world.dataset.test[0].label_code,
            harness().dataset.test[0].label_code);
  EXPECT_EQ(world.model.serialize_snapshot(),
            harness().model.serialize_snapshot());
  std::filesystem::remove(path);
}

TEST(SnapshotEquivalence, SnapshotHandshakeOverLoopbackMatchesOracle) {
  const auto& split = harness().examples;
  ScopedEnv wave("MPIRICAL_DECODE_WAVE", "3");
  ScopedEnv no_shards("MPIRICAL_EVAL_SHARDS", nullptr);

  const core::EvalSummary oracle =
      core::evaluate_model(harness().model, split, /*beam_width=*/1);

  const std::string path = temp_path("world_eval.mpsn");
  core::write_eval_snapshot(path, harness().model, split);

  // Drive the full worker-side snapshot handshake over a loopback pair:
  // the worker's model/split come from the mmap'd file, not from `model`.
  auto [driver_end, worker_end] = shard::make_loopback_pair();
  std::thread worker([end = std::shared_ptr<shard::Transport>(
                          std::move(worker_end))] {
    shard::run_worker_from_snapshot(*end, /*pre_ms=*/0.0);
  });
  shard::SnapshotHello hello;
  hello.path = path;
  driver_end->send(shard::encode_frame(
      shard::FrameType::kSnapshot, shard::encode_snapshot_hello(hello)));

  shard::ShardOptions options;
  options.shards = 1;
  const core::EvalSummary merged = shard::run_driver(
      harness().model, split, {driver_end.get()}, options);
  driver_end->close();
  worker.join();
  expect_identical(merged, oracle, "snapshot handshake loopback");
  std::filesystem::remove(path);
}

TEST(SnapshotEquivalence, WorkerRejectsCorruptSnapshotQuietly) {
  const auto& split = harness().examples;
  ScopedEnv wave("MPIRICAL_DECODE_WAVE", "3");
  ScopedEnv no_shards("MPIRICAL_EVAL_SHARDS", nullptr);

  const core::EvalSummary oracle =
      core::evaluate_model(harness().model, split, /*beam_width=*/1);

  // A corrupt snapshot file: the worker must die quietly (no crash, no
  // partial results) and the driver must fall back in-process, still
  // producing the oracle summary.
  const std::string path = temp_path("world_corrupt.mpsn");
  std::string bytes = core::build_eval_snapshot(harness().model, split);
  bytes[bytes.size() / 2] ^= 0x20;
  io::write_file(path, bytes);

  auto [driver_end, worker_end] = shard::make_loopback_pair();
  std::thread worker([end = std::shared_ptr<shard::Transport>(
                          std::move(worker_end))] {
    shard::run_worker_from_snapshot(*end, /*pre_ms=*/0.0);
  });
  shard::SnapshotHello hello;
  hello.path = path;
  driver_end->send(shard::encode_frame(
      shard::FrameType::kSnapshot, shard::encode_snapshot_hello(hello)));

  shard::ShardOptions options;
  options.shards = 1;
  const core::EvalSummary merged = shard::run_driver(
      harness().model, split, {driver_end.get()}, options);
  driver_end->close();
  worker.join();
  expect_identical(merged, oracle, "corrupt snapshot fallback");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mpirical
