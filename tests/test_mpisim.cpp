#include <gtest/gtest.h>

#include "mpisim/runner.hpp"
#include "support/strings.hpp"

namespace mpirical::mpisim {
namespace {

RunResult run(const std::string& src, int ranks = 4) {
  RunOptions opts;
  opts.num_ranks = ranks;
  return run_mpi_source(src, opts);
}

const char* kPrologue = R"(#include <stdio.h>
#include <mpi.h>

int main(int argc, char **argv) {
    int rank;
    int size;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
)";

std::string wrap(const std::string& body) {
  return std::string(kPrologue) + body +
         "    MPI_Finalize();\n    return 0;\n}\n";
}

TEST(MpiSim, RankAndSize) {
  const auto result = run(wrap("    printf(\"r%d/%d\\n\", rank, size);\n"), 3);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rank_output[0], "r0/3\n");
  EXPECT_EQ(result.rank_output[2], "r2/3\n");
}

TEST(MpiSim, SendRecvPair) {
  const auto result = run(wrap(R"(    int value = 0;
    MPI_Status status;
    if (rank == 0) {
        value = 99;
        MPI_Send(&value, 1, MPI_INT, 1, 5, MPI_COMM_WORLD);
    } else if (rank == 1) {
        MPI_Recv(&value, 1, MPI_INT, 0, 5, MPI_COMM_WORLD, &status);
        printf("got %d from %d tag %d\n", value, status.MPI_SOURCE, status.MPI_TAG);
    }
)"), 2);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rank_output[1], "got 99 from 0 tag 5\n");
}

TEST(MpiSim, AnySourceRecv) {
  const auto result = run(wrap(R"(    int value = rank * 10;
    MPI_Status status;
    if (rank != 0) {
        MPI_Send(&value, 1, MPI_INT, 0, 1, MPI_COMM_WORLD);
    } else {
        int total = 0;
        int i;
        for (i = 1; i < size; i++) {
            MPI_Recv(&value, 1, MPI_INT, MPI_ANY_SOURCE, 1, MPI_COMM_WORLD, &status);
            total += value;
        }
        printf("total %d\n", total);
    }
)"), 4);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rank_output[0], "total 60\n");
}

TEST(MpiSim, TagMatchingHoldsBackWrongTag) {
  const auto result = run(wrap(R"(    int a = 1;
    int b = 2;
    MPI_Status status;
    if (rank == 0) {
        MPI_Send(&a, 1, MPI_INT, 1, 10, MPI_COMM_WORLD);
        MPI_Send(&b, 1, MPI_INT, 1, 20, MPI_COMM_WORLD);
    } else if (rank == 1) {
        int x;
        MPI_Recv(&x, 1, MPI_INT, 0, 20, MPI_COMM_WORLD, &status);
        printf("first %d\n", x);
        MPI_Recv(&x, 1, MPI_INT, 0, 10, MPI_COMM_WORLD, &status);
        printf("second %d\n", x);
    }
)"), 2);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rank_output[1], "first 2\nsecond 1\n");
}

TEST(MpiSim, StatusIgnoreAccepted) {
  const auto result = run(wrap(R"(    int v = rank;
    if (rank == 0) {
        MPI_Send(&v, 1, MPI_INT, 1, 0, MPI_COMM_WORLD);
    } else if (rank == 1) {
        MPI_Recv(&v, 1, MPI_INT, 0, 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        printf("%d\n", v);
    }
)"), 2);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rank_output[1], "0\n");
}

TEST(MpiSim, BcastFromRoot) {
  const auto result = run(wrap(R"(    double data[4];
    int i;
    if (rank == 0) {
        for (i = 0; i < 4; i++) {
            data[i] = (double)(i + 1);
        }
    }
    MPI_Bcast(data, 4, MPI_DOUBLE, 0, MPI_COMM_WORLD);
    printf("rank %d sum %.0f\n", rank, data[0] + data[1] + data[2] + data[3]);
)"), 3);
  ASSERT_TRUE(result.ok) << result.error;
  for (int r = 0; r < 3; ++r) {
    EXPECT_TRUE(contains(result.rank_output[static_cast<std::size_t>(r)],
                         "sum 10"));
  }
}

TEST(MpiSim, ReduceOps) {
  const auto result = run(wrap(R"(    double mine = (double)(rank + 1);
    double s;
    double p;
    double mn;
    double mx;
    MPI_Reduce(&mine, &s, 1, MPI_DOUBLE, MPI_SUM, 0, MPI_COMM_WORLD);
    MPI_Reduce(&mine, &p, 1, MPI_DOUBLE, MPI_PROD, 0, MPI_COMM_WORLD);
    MPI_Reduce(&mine, &mn, 1, MPI_DOUBLE, MPI_MIN, 0, MPI_COMM_WORLD);
    MPI_Reduce(&mine, &mx, 1, MPI_DOUBLE, MPI_MAX, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("%.0f %.0f %.0f %.0f\n", s, p, mn, mx);
    }
)"), 4);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rank_output[0], "10 24 1 4\n");
}

TEST(MpiSim, ReduceVectorElementwise) {
  const auto result = run(wrap(R"(    int mine[3];
    int out[3];
    int i;
    for (i = 0; i < 3; i++) {
        mine[i] = rank + i;
    }
    MPI_Reduce(mine, out, 3, MPI_INT, MPI_SUM, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("%d %d %d\n", out[0], out[1], out[2]);
    }
)"), 4);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rank_output[0], "6 10 14\n");  // sum(rank)+4*i
}

TEST(MpiSim, AllreduceVisibleEverywhere) {
  const auto result = run(wrap(R"(    int one = 1;
    int total;
    MPI_Allreduce(&one, &total, 1, MPI_INT, MPI_SUM, MPI_COMM_WORLD);
    printf("%d\n", total);
)"), 5);
  ASSERT_TRUE(result.ok) << result.error;
  for (const auto& out : result.rank_output) EXPECT_EQ(out, "5\n");
}

TEST(MpiSim, GatherConcatenatesByRank) {
  const auto result = run(wrap(R"(    int mine = rank * rank;
    int all[8];
    MPI_Gather(&mine, 1, MPI_INT, all, 1, MPI_INT, 0, MPI_COMM_WORLD);
    if (rank == 0) {
        printf("%d %d %d %d\n", all[0], all[1], all[2], all[3]);
    }
)"), 4);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rank_output[0], "0 1 4 9\n");
}

TEST(MpiSim, ScatterDistributesChunks) {
  const auto result = run(wrap(R"(    int full[8];
    int mine[2];
    int i;
    if (rank == 0) {
        for (i = 0; i < 8; i++) {
            full[i] = i * 3;
        }
    }
    MPI_Scatter(full, 2, MPI_INT, mine, 2, MPI_INT, 0, MPI_COMM_WORLD);
    printf("rank %d got %d %d\n", rank, mine[0], mine[1]);
)"), 4);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rank_output[2], "rank 2 got 12 15\n");
}

TEST(MpiSim, AllgatherEverywhere) {
  const auto result = run(wrap(R"(    int mine = rank + 1;
    int all[4];
    MPI_Allgather(&mine, 1, MPI_INT, all, 1, MPI_INT, MPI_COMM_WORLD);
    printf("%d%d%d%d\n", all[0], all[1], all[2], all[3]);
)"), 4);
  ASSERT_TRUE(result.ok) << result.error;
  for (const auto& out : result.rank_output) EXPECT_EQ(out, "1234\n");
}

TEST(MpiSim, ScanAndExscan) {
  const auto result = run(wrap(R"(    int mine = rank + 1;
    int inc;
    int exc = 0;
    MPI_Scan(&mine, &inc, 1, MPI_INT, MPI_SUM, MPI_COMM_WORLD);
    MPI_Exscan(&mine, &exc, 1, MPI_INT, MPI_SUM, MPI_COMM_WORLD);
    printf("rank %d inc %d exc %d\n", rank, inc, exc);
)"), 4);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rank_output[3], "rank 3 inc 10 exc 6\n");
  EXPECT_EQ(result.rank_output[0], "rank 0 inc 1 exc 0\n");
}

TEST(MpiSim, SendrecvExchanges) {
  const auto result = run(wrap(R"(    int mine = rank;
    int theirs = -1;
    int partner = rank == 0 ? 1 : 0;
    MPI_Status status;
    MPI_Sendrecv(&mine, 1, MPI_INT, partner, 0, &theirs, 1, MPI_INT, partner, 0, MPI_COMM_WORLD, &status);
    printf("rank %d theirs %d\n", rank, theirs);
)"), 2);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rank_output[0], "rank 0 theirs 1\n");
  EXPECT_EQ(result.rank_output[1], "rank 1 theirs 0\n");
}

TEST(MpiSim, BarrierOrdersPhases) {
  // Without the barrier, "late" could print before rank 0's send completes;
  // the barrier at least must not deadlock and all ranks proceed past it.
  const auto result = run(wrap(R"(    MPI_Barrier(MPI_COMM_WORLD);
    printf("past %d\n", rank);
)"), 6);
  ASSERT_TRUE(result.ok) << result.error;
  for (int r = 0; r < 6; ++r) {
    EXPECT_TRUE(contains(result.rank_output[static_cast<std::size_t>(r)],
                         "past"));
  }
}

TEST(MpiSim, ConsecutiveCollectivesKeepGenerations) {
  const auto result = run(wrap(R"(    int i;
    int total;
    int mine = 1;
    int grand = 0;
    for (i = 0; i < 20; i++) {
        MPI_Allreduce(&mine, &total, 1, MPI_INT, MPI_SUM, MPI_COMM_WORLD);
        grand += total;
    }
    if (rank == 0) {
        printf("%d\n", grand);
    }
)"), 4);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rank_output[0], "80\n");
}

TEST(MpiSim, WtimeMonotonic) {
  const auto result = run(wrap(R"(    double t0 = MPI_Wtime();
    double t1 = MPI_Wtime();
    if (t1 >= t0) {
        printf("ok\n");
    }
)"), 2);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rank_output[0], "ok\n");
}

TEST(MpiSim, GetProcessorName) {
  const auto result = run(wrap(R"(    char node_name[64];
    int name_len;
    MPI_Get_processor_name(node_name, &name_len);
    printf("%s %d\n", node_name, name_len);
)"), 2);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rank_output[1], "simnode1 8\n");
}

TEST(MpiSim, AbortUnblocksPeers) {
  const auto result = run(wrap(R"(    int v;
    MPI_Status status;
    if (rank == 0) {
        MPI_Abort(MPI_COMM_WORLD, 3);
    } else {
        MPI_Recv(&v, 1, MPI_INT, 0, 0, MPI_COMM_WORLD, &status);
    }
)"), 3);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(contains(result.error, "Abort") ||
              contains(result.error, "abort"));
}

TEST(MpiSim, UnimplementedRoutineReportsName) {
  const auto result = run(wrap("    MPI_Alltoallw(0, 0, 0, 0, 0, 0, 0, 0, 0);\n"), 2);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(contains(result.error, "MPI_Alltoallw"));
}

TEST(MpiSim, ParseErrorSurfaces) {
  const auto result = run("int main( {", 2);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(contains(result.error, "parse error"));
}

TEST(MpiSim, RingProgramCompletes) {
  const auto result = run(wrap(R"(    int token;
    int next = (rank + 1) % size;
    int prev = (rank + size - 1) % size;
    MPI_Status status;
    if (rank == 0) {
        token = 100;
        MPI_Send(&token, 1, MPI_INT, next, 0, MPI_COMM_WORLD);
        MPI_Recv(&token, 1, MPI_INT, prev, 0, MPI_COMM_WORLD, &status);
        printf("token %d\n", token);
    } else {
        MPI_Recv(&token, 1, MPI_INT, prev, 0, MPI_COMM_WORLD, &status);
        token += rank;
        MPI_Send(&token, 1, MPI_INT, next, 0, MPI_COMM_WORLD);
    }
)"), 5);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rank_output[0], "token 110\n");  // 100 + 1+2+3+4
}

TEST(MpiSim, SingleRankWorldDegenerates) {
  const auto result = run(wrap(R"(    int one = 1;
    int total;
    MPI_Allreduce(&one, &total, 1, MPI_INT, MPI_SUM, MPI_COMM_WORLD);
    printf("%d\n", total);
)"), 1);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rank_output[0], "1\n");
}

}  // namespace
}  // namespace mpirical::mpisim
