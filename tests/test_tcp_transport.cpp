// Transport-layer suite for the cross-machine TCP path plus the transport
// bugfix sweep: host:port spec parsing, TCP listen/accept/connect semantics
// (ephemeral ports, hostname resolution, connect retry-until-deadline),
// frame integrity over real sockets including RST-mid-frame and garbage
// streams, the accept-loop failure classification (transient fd exhaustion
// retries, a closed/shut-down listener exits), unix_listen's live-daemon
// probe, and the spawn-time close_fds_from sweep that replaced the fixed
// 0..1023 loop.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "shard/protocol.hpp"
#include "shard/transport.hpp"
#include "support/check.hpp"
#include "support/process.hpp"
#include "testing.hpp"

namespace mpirical {
namespace {

/// Runs `fn` and returns the Error message it threw ("" = did not throw).
template <typename Fn>
std::string thrown_message(Fn fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return std::string();
}

/// A connected 127.0.0.1 socket pair via the real listen/connect/accept
/// path. Connect completes against the backlog, so no thread is needed.
struct TcpPair {
  int listen_fd = -1;
  std::unique_ptr<shard::SocketTransport> driver;  // accepted end
  std::unique_ptr<shard::SocketTransport> worker;  // connecting end

  TcpPair() {
    std::uint16_t port = 0;
    listen_fd = shard::tcp_listen("127.0.0.1", 0, /*backlog=*/4, &port);
    worker = std::make_unique<shard::SocketTransport>(
        shard::tcp_connect("127.0.0.1", port, /*timeout_ms=*/5000));
    driver = std::make_unique<shard::SocketTransport>(
        shard::tcp_accept(listen_fd));
  }
  ~TcpPair() {
    if (listen_fd >= 0) ::close(listen_fd);
  }
};

// ---- host:port spec parsing -------------------------------------------------

TEST(SplitHostPort, ParsesCommonForms) {
  const auto v4 = shard::split_host_port("127.0.0.1:8080");
  EXPECT_EQ(v4.first, "127.0.0.1");
  EXPECT_EQ(v4.second, 8080);

  const auto name = shard::split_host_port("node17.cluster:0");
  EXPECT_EQ(name.first, "node17.cluster");
  EXPECT_EQ(name.second, 0);

  const auto v6 = shard::split_host_port("[::1]:443");
  EXPECT_EQ(v6.first, "::1");
  EXPECT_EQ(v6.second, 443);

  // Bare ":port" = any interface, for --listen specs.
  const auto any = shard::split_host_port(":9000");
  EXPECT_EQ(any.first, "");
  EXPECT_EQ(any.second, 9000);
}

TEST(SplitHostPort, RejectsMalformedSpecs) {
  EXPECT_NE(thrown_message([] { shard::split_host_port("no-port-here"); }),
            "");
  EXPECT_NE(thrown_message([] { shard::split_host_port("host:"); }), "");
  EXPECT_NE(thrown_message([] { shard::split_host_port("host:http"); }), "");
  EXPECT_NE(thrown_message([] { shard::split_host_port("host:70000"); }), "");
  EXPECT_NE(thrown_message([] { shard::split_host_port("host:-1"); }), "");
}

// ---- TCP stream semantics ---------------------------------------------------

TEST(TcpTransport, EphemeralPortIsReported) {
  std::uint16_t port = 0;
  const int fd = shard::tcp_listen("127.0.0.1", 0, 4, &port);
  ASSERT_GE(fd, 0);
  EXPECT_GT(port, 0);
  ::close(fd);
}

TEST(TcpTransport, FramesSurviveTheRoundTripBothWays) {
  MR_SEEDED_RNG(rng, 0x7c91);
  TcpPair pair;

  // Worker -> driver: a payload big enough to split across several
  // recv_some calls, with seeded random bytes so any reordering or
  // corruption would show.
  std::string blob(300000, '\0');
  for (auto& c : blob) c = static_cast<char>(rng.next_below(256));
  ASSERT_TRUE(pair.worker->send(
      shard::encode_frame(shard::FrameType::kResult, blob)));

  shard::FrameParser driver_parser;
  std::optional<shard::Frame> got;
  while (!got) {
    const std::string bytes = pair.driver->recv_some();
    ASSERT_FALSE(bytes.empty()) << "EOF before the frame completed";
    driver_parser.feed(bytes.data(), bytes.size());
    got = driver_parser.next();
  }
  EXPECT_EQ(got->type, shard::FrameType::kResult);
  EXPECT_EQ(got->payload, blob);

  // Driver -> worker on the same connection.
  shard::TaskGrant grant;
  grant.chunk_index = 3;
  grant.begin = 96;
  grant.end = 128;
  ASSERT_TRUE(pair.driver->send(shard::encode_frame(
      shard::FrameType::kTaskGrant, shard::encode_task_grant(grant))));
  shard::FrameParser worker_parser;
  std::optional<shard::Frame> reply;
  while (!reply) {
    const std::string bytes = pair.worker->recv_some();
    ASSERT_FALSE(bytes.empty());
    worker_parser.feed(bytes.data(), bytes.size());
    reply = worker_parser.next();
  }
  const shard::TaskGrant decoded = shard::decode_task_grant(reply->payload);
  EXPECT_EQ(decoded.chunk_index, 3u);
  EXPECT_EQ(decoded.begin, 96u);
  EXPECT_EQ(decoded.end, 128u);
}

TEST(TcpTransport, HalfCloseDrainsInFlightFramesThenEof) {
  TcpPair pair;
  const std::string frame =
      shard::encode_frame(shard::FrameType::kHeartbeat, "");
  ASSERT_TRUE(pair.worker->send(frame));
  pair.worker->close();  // shutdown(SHUT_WR): "no more requests"

  // The driver still receives everything sent before the half-close...
  std::string drained;
  for (;;) {
    const std::string bytes = pair.driver->recv_some();
    if (bytes.empty()) break;
    drained += bytes;
  }
  EXPECT_EQ(drained, frame);

  // ...and the half-closed end can still READ: the reply direction stays
  // open, which is what lets a serve client collect its last results.
  ASSERT_TRUE(pair.driver->send(frame));
  EXPECT_EQ(pair.worker->recv_some(), frame);
}

TEST(TcpTransport, HostnameResolutionWorksForLocalhost) {
  std::uint16_t port = 0;
  const int listen_fd = shard::tcp_listen("localhost", 0, 4, &port);
  ASSERT_GE(listen_fd, 0);
  shard::SocketTransport client(shard::tcp_connect("localhost", port, 5000));
  shard::SocketTransport server(shard::tcp_accept(listen_fd));
  ASSERT_TRUE(client.send("ping"));
  EXPECT_EQ(server.recv_some(), "ping");
  ::close(listen_fd);
}

TEST(TcpTransport, ConnectTimesOutWhenNothingListens) {
  // Grab an ephemeral port, then close the listener: connects to it are
  // refused, and tcp_connect must retry (the peer could be booting) until
  // the deadline instead of failing on the first refusal.
  std::uint16_t port = 0;
  const int fd = shard::tcp_listen("127.0.0.1", 0, 1, &port);
  ASSERT_GE(fd, 0);
  ::close(fd);

  const auto start = std::chrono::steady_clock::now();
  const std::string msg = thrown_message(
      [&] { shard::tcp_connect("127.0.0.1", port, /*timeout_ms=*/300); });
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_NE(msg.find("timed out waiting for the peer"), std::string::npos)
      << msg;
  EXPECT_GE(elapsed.count(), 290);  // it kept retrying, not one-shot
}

TEST(TcpTransport, ConnectRetriesWhileTheListenerBoots) {
  // Reserve a port, free it, and bring the real listener up only after a
  // delay -- tcp_connect must survive the refusals in between (a remote
  // worker still booting when the driver dials).
  std::uint16_t port = 0;
  const int probe = shard::tcp_listen("127.0.0.1", 0, 1, &port);
  ASSERT_GE(probe, 0);
  ::close(probe);

  std::atomic<int> accepted{-2};
  std::thread late_listener([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    const int listen_fd = shard::tcp_listen("127.0.0.1", port, 4);
    accepted.store(shard::tcp_accept(listen_fd));
    ::close(listen_fd);
  });
  const int fd = shard::tcp_connect("127.0.0.1", port, /*timeout_ms=*/5000);
  late_listener.join();
  EXPECT_GE(fd, 0);
  EXPECT_GE(accepted.load(), 0);
  ::close(fd);
  if (accepted.load() >= 0) ::close(accepted.load());
}

TEST(TcpTransport, UnresolvableHostIsAHardError) {
  // A typo'd host must fail loudly and immediately -- masking it behind the
  // connect-retry deadline would make the driver hang for the full timeout.
  const std::string msg = thrown_message(
      [] { shard::tcp_connect("host.invalid", 80, /*timeout_ms=*/60000); });
  EXPECT_NE(msg.find("resolve"), std::string::npos) << msg;
}

// ---- fault shapes on the wire ----------------------------------------------

TEST(TcpFaults, RstMidFrameLooksLikeTruncationNotGarbage) {
  std::uint16_t port = 0;
  const int listen_fd = shard::tcp_listen("127.0.0.1", 0, 4, &port);
  const int peer_fd = shard::tcp_connect("127.0.0.1", port, 5000);
  shard::SocketTransport reader(shard::tcp_accept(listen_fd));
  ::close(listen_fd);

  // The peer sends half a frame, then aborts hard: SO_LINGER{on, 0} turns
  // close() into an RST instead of an orderly FIN -- a worker machine
  // dropping off the network mid-record.
  const std::string frame = shard::encode_frame(
      shard::FrameType::kResult, std::string(4096, 'r'));
  const std::string half = frame.substr(0, frame.size() / 2);
  ASSERT_EQ(::send(peer_fd, half.data(), half.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(half.size()));
  struct linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ASSERT_EQ(::setsockopt(peer_fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg)), 0);
  ::close(peer_fd);

  // The reader sees some prefix of the frame and then EOF (the RST surfaces
  // as a failed recv, same empty-string signal). The parser must report a
  // PARTIAL frame -- the driver's worker-died-mid-record path -- and never
  // hand over a bogus complete frame.
  shard::FrameParser parser;
  for (;;) {
    const std::string bytes = reader.recv_some();
    if (bytes.empty()) break;
    ASSERT_NO_THROW(parser.feed(bytes.data(), bytes.size()));
  }
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.has_partial());
}

TEST(TcpFaults, GarbageBytesOverTcpRejectedLoudly) {
  TcpPair pair;
  ASSERT_TRUE(pair.worker->send("these bytes are not a protocol frame"));
  const std::string bytes = pair.driver->recv_some();
  ASSERT_FALSE(bytes.empty());
  shard::FrameParser parser;
  EXPECT_THROW(parser.feed(bytes.data(), bytes.size()), Error);
}

// ---- accept-loop failure classification (the Server::run fix) ---------------

TEST(AcceptRetry, SurvivesFdExhaustionAndResumesAccepting) {
  std::uint16_t port = 0;
  const int listen_fd = shard::tcp_listen("127.0.0.1", 0, 4, &port);
  ASSERT_GE(listen_fd, 0);
  // The client lands in the backlog first; accept() will find it waiting.
  const int client_fd = shard::tcp_connect("127.0.0.1", port, 5000);
  ASSERT_GE(client_fd, 0);

  // Now exhaust the descriptor table: lower RLIMIT_NOFILE and dup() until
  // EMFILE, the state a loaded daemon hits. The old accept loop treated the
  // resulting accept() failure as fatal and abandoned the listener.
  struct rlimit saved;
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  struct rlimit squeezed = saved;
  squeezed.rlim_cur = 256;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &squeezed), 0);
  std::vector<int> hogs;
  for (;;) {
    const int fd = ::dup(0);
    if (fd < 0) {
      EXPECT_EQ(errno, EMFILE);
      break;
    }
    hogs.push_back(fd);
  }

  std::atomic<int> accepted{-2};
  std::thread acceptor([&] { accepted.store(shard::tcp_accept(listen_fd)); });
  // Give the accept loop time to hit EMFILE and enter its backoff...
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(accepted.load(), -2) << "accept gave up during fd exhaustion";
  // ...then free descriptors: the retry must now succeed.
  for (const int fd : hogs) ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);
  acceptor.join();
  ASSERT_GE(accepted.load(), 0);

  // The recovered connection actually works end to end.
  shard::SocketTransport server(accepted.load());
  shard::SocketTransport client(client_fd);
  ASSERT_TRUE(client.send("still here"));
  EXPECT_EQ(server.recv_some(), "still here");
  ::close(listen_fd);
}

TEST(AcceptRetry, ClosedListenerExitsTheLoop) {
  std::uint16_t port = 0;
  const int listen_fd = shard::tcp_listen("127.0.0.1", 0, 4, &port);
  ::close(listen_fd);
  // EBADF is the daemon's own shutdown, not a transient fault: return -1
  // promptly instead of retrying forever.
  EXPECT_EQ(shard::tcp_accept(listen_fd), -1);
}

TEST(AcceptRetry, ShutDownListenerExitsTheLoop) {
  std::uint16_t port = 0;
  const int listen_fd = shard::tcp_listen("127.0.0.1", 0, 4, &port);
  ASSERT_EQ(::shutdown(listen_fd, SHUT_RDWR), 0);
  // shutdown() on a listener surfaces as EINVAL -- the wake-a-blocked-
  // accept shutdown path must also classify as "listener gone".
  EXPECT_EQ(shard::tcp_accept(listen_fd), -1);
  ::close(listen_fd);
}

// ---- unix_listen liveness probe (the silent-unlink fix) ---------------------

TEST(UnixListen, RefusesToStealALiveDaemonsSocket) {
  const std::string path = "/tmp/mpirical_tcp_test_" +
                           std::to_string(::getpid()) + "_live.sock";
  const int live = shard::unix_listen(path, 4);
  ASSERT_GE(live, 0);
  // A second listener must NOT silently unlink the live daemon's address.
  const std::string msg =
      thrown_message([&] { shard::unix_listen(path, 4); });
  EXPECT_NE(msg.find("daemon already serving"), std::string::npos) << msg;
  // The live daemon is unharmed: a client still reaches it.
  const int client = shard::unix_connect(path, 5000);
  EXPECT_GE(client, 0);
  ::close(client);
  ::close(live);
  ::unlink(path.c_str());
}

TEST(UnixListen, ReplacesAStaleSocketFile) {
  const std::string path = "/tmp/mpirical_tcp_test_" +
                           std::to_string(::getpid()) + "_stale.sock";
  const int first = shard::unix_listen(path, 4);
  ASSERT_GE(first, 0);
  ::close(first);  // daemon died; its socket file lingers

  // Nothing answers at the file now, so a new daemon may take the address.
  const int second = shard::unix_listen(path, 4);
  EXPECT_GE(second, 0);
  ::close(second);
  ::unlink(path.c_str());
}

TEST(UnixListen, RejectsANonSocketFileAtThePath) {
  const std::string path = "/tmp/mpirical_tcp_test_" +
                           std::to_string(::getpid()) + "_notsock";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::write(fd, "x", 1), 1);
  ::close(fd);
  const std::string msg =
      thrown_message([&] { shard::unix_listen(path, 4); });
  EXPECT_NE(msg.find("not a socket"), std::string::npos) << msg;
  ::unlink(path.c_str());
}

// ---- close_fds_from (the spawn fd-leak fix) ---------------------------------

TEST(CloseFdsFrom, ClosesEveryFdAtOrAboveTheFloorIncludingHighOnes) {
  // The old spawn path closed a fixed 5..1023 range; descriptors above 1023
  // (routine at the RLIMIT_NOFILE this repo's eval runs raise) leaked into
  // every worker. Park dups well above the old ceiling and check a forked
  // child really loses them.
  int report[2];
  ASSERT_EQ(::pipe(report), 0);
  const int high1 = ::fcntl(report[0], F_DUPFD, 1500);
  const int high2 = ::fcntl(report[0], F_DUPFD, 4000);
  ASSERT_GT(high1, 1023);
  ASSERT_GT(high2, 1023);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: report through fd 4 (below the floor, must survive the sweep).
    ::dup2(report[1], 4);
    support::close_fds_from(5);
    const bool high_gone = ::fcntl(high1, F_GETFD) == -1 && errno == EBADF &&
                           ::fcntl(high2, F_GETFD) == -1;
    const char verdict = high_gone ? '1' : '0';
    const ssize_t n = ::write(4, &verdict, 1);
    ::_exit(n == 1 ? 0 : 1);
  }
  ::close(report[1]);
  char verdict = '?';
  ASSERT_EQ(::read(report[0], &verdict, 1), 1);
  EXPECT_EQ(verdict, '1');
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ::close(report[0]);
  ::close(high1);
  ::close(high2);
}

}  // namespace
}  // namespace mpirical
