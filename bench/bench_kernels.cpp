// Kernel-layer microbench: blocked vs naive GEMM/GEMV plus the fused
// attention op, reporting GFLOP/s. Emits one machine-readable JSON line per
// case on stdout (human-readable table on stderr), so perf trajectories can
// be recorded as BENCH_kernels.json across PRs:
//
//   ./bench_kernels > BENCH_kernels.json
//
// Repetitions are time-targeted: each case runs for at least ~0.3 s and the
// best (lowest-noise) repetition is reported.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"
#include "tensor/kernels.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace mpirical;
using tensor::kernels::Trans;

// Smoke mode (bench::smoke_mode): shorter timing windows and the largest
// shape skipped, so CI can record trend lines in a few seconds.
using bench::smoke_mode;

/// Runs `body` repeatedly for >= 0.3 s (0.05 s in smoke mode; at least 3
/// reps) and returns the best seconds-per-call.
template <typename Body>
double best_seconds(Body&& body) {
  const double budget = smoke_mode() ? 0.05 : 0.3;
  double best = 1e30;
  double total = 0.0;
  int reps = 0;
  while (total < budget || reps < 3) {
    Timer timer;
    body();
    const double s = timer.seconds();
    best = std::min(best, s);
    total += s;
    ++reps;
    if (reps > 10000) break;
  }
  return best;
}

double max_abs_diff(const std::vector<float>& a, const std::vector<float>& b) {
  double mx = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    mx = std::max(mx, static_cast<double>(std::fabs(a[i] - b[i])));
  }
  return mx;
}

void report(const std::string& name, int m, int n, int k, double blocked_s,
            double naive_s, double diff) {
  const double flops = 2.0 * m * n * k;
  const double gf_blocked = flops / blocked_s * 1e-9;
  const double gf_naive = naive_s > 0.0 ? flops / naive_s * 1e-9 : 0.0;
  // "smoke" marks lines timed with the shortened window so trajectory
  // tooling never compares them against full-protocol measurements.
  std::printf(
      "{\"bench\":\"%s\",\"m\":%d,\"n\":%d,\"k\":%d,"
      "\"gflops_blocked\":%.3f,\"gflops_naive\":%.3f,\"speedup\":%.3f,"
      "\"max_abs_diff\":%.3g,\"smoke\":%s}\n",
      name.c_str(), m, n, k, gf_blocked, gf_naive,
      naive_s > 0.0 ? naive_s / blocked_s : 0.0, diff,
      smoke_mode() ? "true" : "false");
  std::fflush(stdout);
  std::fprintf(stderr, "%-14s m=%-5d n=%-5d k=%-5d %8.2f GF/s (naive %6.2f, %5.2fx)\n",
               name.c_str(), m, n, k, gf_blocked, gf_naive,
               naive_s > 0.0 ? naive_s / blocked_s : 0.0);
}

void bench_gemm(Trans ta, Trans tb, const char* name, int m, int n, int k,
                Rng& rng) {
  const int lda = ta == Trans::N ? k : m;
  const int ldb = tb == Trans::N ? n : k;
  const auto a = rng.gaussian_vec(static_cast<std::size_t>(m) * k);
  const auto b = rng.gaussian_vec(static_cast<std::size_t>(k) * n);
  std::vector<float> c_blocked(static_cast<std::size_t>(m) * n, 0.0f);
  std::vector<float> c_naive(static_cast<std::size_t>(m) * n, 0.0f);

  tensor::kernels::gemm_acc(ta, tb, m, n, k, a.data(), lda, b.data(), ldb,
                            c_blocked.data(), n);
  tensor::kernels::naive::gemm_acc(ta, tb, m, n, k, a.data(), lda, b.data(),
                                   ldb, c_naive.data(), n);
  const double diff = max_abs_diff(c_blocked, c_naive);

  const double blocked_s = best_seconds([&] {
    tensor::kernels::gemm_acc(ta, tb, m, n, k, a.data(), lda, b.data(), ldb,
                              c_blocked.data(), n);
  });
  const double naive_s = best_seconds([&] {
    tensor::kernels::naive::gemm_acc(ta, tb, m, n, k, a.data(), lda, b.data(),
                                     ldb, c_naive.data(), n);
  });
  report(name, m, n, k, blocked_s, naive_s, diff);
}

void bench_gemv(int m, int n, Rng& rng) {
  const auto x = rng.gaussian_vec(static_cast<std::size_t>(m));
  const auto w = rng.gaussian_vec(static_cast<std::size_t>(m) * n);
  const auto bias = rng.gaussian_vec(static_cast<std::size_t>(n));
  std::vector<float> y_blocked(static_cast<std::size_t>(n));
  std::vector<float> y_naive(static_cast<std::size_t>(n));

  tensor::kernels::gemv(m, n, x.data(), w.data(), n, bias.data(),
                        y_blocked.data());
  tensor::kernels::naive::gemv(m, n, x.data(), w.data(), n, bias.data(),
                               y_naive.data());
  const double diff = max_abs_diff(y_blocked, y_naive);

  const double blocked_s = best_seconds([&] {
    for (int r = 0; r < 64; ++r) {
      tensor::kernels::gemv(m, n, x.data(), w.data(), n, bias.data(),
                            y_blocked.data());
    }
  });
  const double naive_s = best_seconds([&] {
    for (int r = 0; r < 64; ++r) {
      tensor::kernels::naive::gemv(m, n, x.data(), w.data(), n, bias.data(),
                                   y_naive.data());
    }
  });
  report("gemv", 1, n, m, blocked_s / 64.0, naive_s / 64.0, diff);
}

// Int8-weights packed GEMM vs the f32 packed path on the same operands:
// the decode engine's per-wave product, where B is a prepacked weight panel.
// Reports the int8-over-f32 speedup and the bytes each packed operand
// streams per pass (the int8 win is memory-bound, ~4x fewer weight bytes).
void bench_gemm_i8(int m, int n, int k, Rng& rng) {
  const auto a = rng.gaussian_vec(static_cast<std::size_t>(m) * k);
  const auto b = rng.gaussian_vec(static_cast<std::size_t>(k) * n);
  const tensor::kernels::PackedPanelB packed_f32 =
      tensor::kernels::pack_b_panels(Trans::N, n, k, b.data(), n);
  const tensor::kernels::PackedPanelBI8 packed_i8 =
      tensor::kernels::pack_b_panels_i8(Trans::N, n, k, b.data(), n);

  std::vector<float> c_f32(static_cast<std::size_t>(m) * n, 0.0f);
  std::vector<float> c_i8(static_cast<std::size_t>(m) * n, 0.0f);
  tensor::kernels::gemm_acc_packed(Trans::N, m, a.data(), k, packed_f32,
                                   c_f32.data(), n);
  tensor::kernels::gemm_acc_packed_i8(Trans::N, m, a.data(), k, packed_i8,
                                      c_i8.data(), n);
  const double diff = max_abs_diff(c_f32, c_i8);  // quantization error

  const double f32_s = best_seconds([&] {
    tensor::kernels::gemm_acc_packed(Trans::N, m, a.data(), k, packed_f32,
                                     c_f32.data(), n);
  });
  const double i8_s = best_seconds([&] {
    tensor::kernels::gemm_acc_packed_i8(Trans::N, m, a.data(), k, packed_i8,
                                        c_i8.data(), n);
  });
  const double flops = 2.0 * m * n * k;
  const std::size_t f32_bytes = packed_f32.data.size() * sizeof(float);
  std::printf(
      "{\"bench\":\"gemm_i8\",\"m\":%d,\"n\":%d,\"k\":%d,"
      "\"gflops_i8\":%.3f,\"gflops_f32\":%.3f,\"speedup_vs_f32\":%.3f,"
      "\"weight_bytes_i8\":%zu,\"weight_bytes_f32\":%zu,"
      "\"max_abs_diff\":%.3g,\"smoke\":%s}\n",
      m, n, k, flops / i8_s * 1e-9, flops / f32_s * 1e-9, f32_s / i8_s,
      packed_i8.weight_bytes(), f32_bytes, diff,
      smoke_mode() ? "true" : "false");
  std::fflush(stdout);
  std::fprintf(stderr,
               "gemm_i8        m=%-5d n=%-5d k=%-5d %8.2f GF/s (f32 %6.2f, "
               "%5.2fx, %zu->%zu B)\n",
               m, n, k, flops / i8_s * 1e-9, flops / f32_s * 1e-9, f32_s / i8_s,
               f32_bytes, packed_i8.weight_bytes());
}

// Software-prefetch before/after for both packed micro-kernels. Recorded
// even when the host shows no win (single-core CI boxes often don't); the
// JSON keeps the trajectory comparable across machines.
void bench_prefetch(const char* kernel, int m, int n, int k, Rng& rng) {
  const auto a = rng.gaussian_vec(static_cast<std::size_t>(m) * k);
  const auto b = rng.gaussian_vec(static_cast<std::size_t>(k) * n);
  const tensor::kernels::PackedPanelB packed_f32 =
      tensor::kernels::pack_b_panels(Trans::N, n, k, b.data(), n);
  const tensor::kernels::PackedPanelBI8 packed_i8 =
      tensor::kernels::pack_b_panels_i8(Trans::N, n, k, b.data(), n);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.0f);
  const bool is_i8 = std::string(kernel) == "i8";
  const auto run = [&] {
    if (is_i8) {
      tensor::kernels::gemm_acc_packed_i8(Trans::N, m, a.data(), k, packed_i8,
                                          c.data(), n);
    } else {
      tensor::kernels::gemm_acc_packed(Trans::N, m, a.data(), k, packed_f32,
                                       c.data(), n);
    }
  };
  const bool saved = tensor::kernels::gemm_prefetch_enabled();
  tensor::kernels::set_gemm_prefetch(false);
  const double off_s = best_seconds(run);
  tensor::kernels::set_gemm_prefetch(true);
  const double on_s = best_seconds(run);
  tensor::kernels::set_gemm_prefetch(saved);
  const double flops = 2.0 * m * n * k;
  std::printf(
      "{\"bench\":\"gemm_prefetch\",\"kernel\":\"%s\",\"m\":%d,\"n\":%d,"
      "\"k\":%d,\"gflops_off\":%.3f,\"gflops_on\":%.3f,\"speedup\":%.3f,"
      "\"smoke\":%s}\n",
      kernel, m, n, k, flops / off_s * 1e-9, flops / on_s * 1e-9, off_s / on_s,
      smoke_mode() ? "true" : "false");
  std::fflush(stdout);
  std::fprintf(stderr,
               "gemm_prefetch  %-3s m=%-5d n=%-5d k=%-5d off %6.2f on %6.2f "
               "GF/s (%5.2fx)\n",
               kernel, m, n, k, flops / off_s * 1e-9, flops / on_s * 1e-9,
               off_s / on_s);
}

void bench_attention(int t, int d, int heads, bool causal, Rng& rng) {
  tensor::Tensor q = tensor::Tensor::randn({t, d}, rng, 1.0f);
  tensor::Tensor k = tensor::Tensor::randn({t, d}, rng, 1.0f);
  tensor::Tensor v = tensor::Tensor::randn({t, d}, rng, 1.0f);
  const double seconds = best_seconds([&] {
    auto o = tensor::multi_head_attention(q, k, v, 1, heads, causal);
    (void)o;
  });
  // Score GEMM + PV GEMM, halved under the causal mask.
  double flops = 4.0 * t * t * d;
  if (causal) flops *= 0.5;
  std::printf(
      "{\"bench\":\"attention\",\"t\":%d,\"d\":%d,\"heads\":%d,"
      "\"causal\":%s,\"gflops\":%.3f,\"seconds\":%.6f,\"smoke\":%s}\n",
      t, d, heads, causal ? "true" : "false", flops / seconds * 1e-9, seconds,
      smoke_mode() ? "true" : "false");
  std::fflush(stdout);
  std::fprintf(stderr, "attention      t=%-5d d=%-5d h=%d causal=%d %8.2f GF/s\n",
               t, d, heads, causal ? 1 : 0, flops / seconds * 1e-9);
}

}  // namespace

int main() {
  Rng rng(12345);

  // d_model-scale square shapes named in the acceptance criteria, plus the
  // transformer's actual hot shapes (batched linear layers, vocab projection).
  for (int s : {128, 256, 512}) {
    if (s == 512 && smoke_mode()) continue;
    bench_gemm(Trans::N, Trans::N, "gemm_nn", s, s, s, rng);
  }
  bench_gemm(Trans::T, Trans::N, "gemm_tn", 256, 256, 256, rng);
  bench_gemm(Trans::N, Trans::T, "gemm_nt", 256, 256, 256, rng);
  bench_gemm(Trans::N, Trans::N, "gemm_linear", 2048, 96, 96, rng);
  bench_gemm(Trans::N, Trans::N, "gemm_vocab", 512, 800, 96, rng);

  // Decode-wave shapes (small m = wave rows against weight panels) plus one
  // square compute-bound shape for the int8 path.
  bench_gemm_i8(24, 96, 96, rng);
  bench_gemm_i8(24, 800, 96, rng);
  if (!smoke_mode()) bench_gemm_i8(256, 256, 256, rng);

  bench_prefetch("f32", 24, 800, 96, rng);
  bench_prefetch("i8", 24, 800, 96, rng);
  if (!smoke_mode()) {
    bench_prefetch("f32", 256, 256, 256, rng);
    bench_prefetch("i8", 256, 256, 256, rng);
  }

  bench_gemv(96, 96, rng);
  bench_gemv(96, 800, rng);
  bench_gemv(192, 96, rng);

  bench_attention(160, 96, 4, /*causal=*/false, rng);
  bench_attention(160, 96, 4, /*causal=*/true, rng);
  bench_attention(320, 96, 4, /*causal=*/false, rng);
  return 0;
}
