// Shared setup for the experiment benches: environment-tunable dataset /
// model configuration, a cached trained model (trained once per artifacts
// directory, reused by every model-dependent bench), and table printing
// helpers.
//
// Environment knobs:
//   MPIRICAL_BENCH_CORPUS      corpus size for the training dataset (default 2600)
//   MPIRICAL_BENCH_STATS_CORPUS corpus size for the statistics benches (default 20000)
//   MPIRICAL_BENCH_EPOCHS      training epochs (default 5, the paper's setting)
//   MPIRICAL_BENCH_SEED        dataset/model seed (default 42)
//   MPIRICAL_ARTIFACTS         artifact directory (default ./mpirical_artifacts)
//   MPIRICAL_BENCH_RETRAIN     set to 1 to ignore a cached checkpoint
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/tagger.hpp"
#include "corpus/dataset.hpp"

namespace mpirical::bench {

std::size_t env_size(const char* name, std::size_t fallback);
std::string artifacts_dir();

/// MPIRICAL_BENCH_SMOKE set and non-"0": shrink workloads for CI.
bool smoke_mode();

/// setenv(name, value) only when the variable is unset -- smoke-mode
/// defaults that still respect explicit overrides. Call before
/// ensure_trained_model (and before spawning shard workers, which inherit
/// the resulting environment).
void setenv_default(const char* name, const char* value);

/// Appends one line to a BENCH_*.json perf-trajectory file. Crash- and
/// concurrency-safe: the line goes out as ONE write() on an O_APPEND
/// descriptor (io::append_line), so parallel bench processes appending to
/// the same file never interleave bytes and a crash cannot leave a torn
/// line (tests/test_bench_common.cpp hammers this from forked writers).
void append_json_line(const std::string& path, const std::string& line);

/// Leading-comma JSON fragment recording the packed-weight-cache
/// configuration of this process (`,"pack_cache":true|false`, from
/// MPIRICAL_PACK_CACHE), so every bench record carries the knob the run
/// executed under -- the same discipline as the `transport` /
/// `snapshot_streamed` fields. Benches pair it with nn::pack_cache_stats()
/// deltas for the measured pack_ms / hit / miss counts.
std::string pack_cache_config_json();

/// Nearest-rank percentile over an ALREADY SORTED ascending sample:
/// the smallest value >= p of the sample (rank = ceil(p*n), clamped to
/// [1, n]), so p=0 is the minimum, p=1 the maximum, and p=0.5 of [1,2,3,4]
/// is 2. Returns 0 for an empty sample. Replaces bench_serve's old
/// `sorted[p*(n-1)+0.5]` interpolation-by-truncation, which read one rank
/// high on even-sized samples (p50 of 100 values returned the 51st).
double percentile(const std::vector<double>& sorted, double p);

/// Shard-worker entry for the model-eval benches. When this process was
/// launched with MPIRICAL_EVAL_SHARD_ROLE=worker it obtains the SAME model
/// and test split the driver evaluates -- by mmap'ing the world snapshot the
/// driver ships path-over-pipe (default), or, with MPIRICAL_SNAPSHOT=0, by
/// rebuilding from the inherited environment (cached checkpoint +
/// deterministic dataset) -- serves shard chunks over the inherited pipes
/// (shard::worker_transport), and returns true; the caller must then
/// exit(0) without running the bench body. Returns false in a normal
/// (driver) process. Either way the worker reports its startup/load timings
/// to the driver, so BENCH_table2.json records the spawn cost of both
/// deployments.
bool maybe_run_eval_shard_worker();

corpus::DatasetConfig default_dataset_config();
core::ModelConfig default_model_config();

struct TrainedSetup {
  corpus::Dataset dataset;
  core::MpiRical model;
  std::vector<core::EpochLog> epoch_logs;  // empty when loaded from cache
  bool from_snapshot = false;      // loaded whole from MPIRICAL_SNAPSHOT_PATH
  double snapshot_load_ms = -1.0;  // mmap + fixups time when from_snapshot
};

/// Loads the cached model if present (and retraining not forced), otherwise
/// builds the dataset, trains (echoing per-epoch logs), and caches both the
/// checkpoint and the training log under artifacts_dir().
///
/// With MPIRICAL_SNAPSHOT_PATH set (and snapshots enabled): when the file
/// exists, model AND dataset come straight from the mmap'd snapshot --
/// corpus construction and training are skipped entirely; when it does not,
/// the normal build/train path runs and then writes the dataset snapshot
/// there, so a later run (or CI job) starts from the file.
TrainedSetup ensure_trained_model();

/// Reads the persisted training log (epoch, train_loss, val_loss, val_acc,
/// seconds per line). Returns empty if missing.
std::vector<core::EpochLog> load_training_log();

/// Trains the classification-framing engine (encoder-only tagger) on the
/// dataset. Fast (encoder only); not cached. Epochs via
/// MPIRICAL_BENCH_TAGGER_EPOCHS (default 4).
core::Tagger train_tagger(const corpus::Dataset& dataset);

/// Prints a horizontal rule and a centered bench title.
void print_header(const std::string& title);

}  // namespace mpirical::bench
