// Reproduces Fig. 5: training loss, validation loss and token accuracy as a
// function of epoch. Also the bench that trains (and caches) the shared
// MPI-RICAL checkpoint used by the Table II / Table III benches.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace mpirical;
  bench::print_header(
      "Fig. 5 -- training loss / validation loss / accuracy per epoch");

  auto setup = bench::ensure_trained_model();
  auto logs = setup.epoch_logs;
  if (logs.empty()) logs = bench::load_training_log();
  if (logs.empty()) {
    std::printf("no training log available (cached checkpoint without log)\n");
    return 0;
  }

  std::printf("\n%-7s %12s %12s %12s %10s\n", "Epoch", "TrainLoss",
              "ValLoss", "ValTokAcc", "Seconds");
  for (const auto& log : logs) {
    std::printf("%-7d %12.4f %12.4f %12.4f %10.1f\n", log.epoch,
                log.train_loss, log.val_loss, log.val_token_accuracy,
                log.seconds);
  }
  std::printf(
      "\nPaper shape: both losses decrease monotonically and accuracy rises "
      "across the 5 epochs.\n");

  bool train_monotone = true;
  for (std::size_t i = 1; i < logs.size(); ++i) {
    if (logs[i].train_loss > logs[i - 1].train_loss) train_monotone = false;
  }
  std::printf("Measured: train loss monotone decreasing: %s; accuracy "
              "improved %.4f -> %.4f\n",
              train_monotone ? "yes" : "no",
              logs.front().val_token_accuracy,
              logs.back().val_token_accuracy);
  return 0;
}
