// Reproduces Fig. 3: histogram of the ratio between the Init..Finalize span
// and the whole program length. Paper: most files have ratio > 0.5.
#include <cstdio>

#include "bench_common.hpp"
#include "corpus/stats.hpp"

int main() {
  using namespace mpirical;
  bench::print_header(
      "Fig. 3 -- Init-Finalize span to program length ratio histogram");

  const std::size_t n = bench::env_size("MPIRICAL_BENCH_STATS_CORPUS", 20000);
  const auto corpus = corpus::build_corpus(
      {n, bench::env_size("MPIRICAL_BENCH_SEED", 42)});
  const auto stats = corpus::compute_stats(corpus);

  std::size_t max_bin = 1;
  for (std::size_t count : stats.ratio_histogram) {
    if (count > max_bin) max_bin = count;
  }
  const int width = 50;
  std::size_t above_half = 0;
  for (std::size_t bin = 0; bin < corpus::CorpusStats::kRatioBins; ++bin) {
    const double lo =
        static_cast<double>(bin) / corpus::CorpusStats::kRatioBins;
    const double hi =
        static_cast<double>(bin + 1) / corpus::CorpusStats::kRatioBins;
    const std::size_t count = stats.ratio_histogram[bin];
    if (lo >= 0.5) above_half += count;
    const int bar = static_cast<int>(static_cast<double>(count) * width /
                                     static_cast<double>(max_bin));
    std::printf("[%.2f,%.2f) %7zu |", lo, hi, count);
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("\n");
  }
  std::printf(
      "\nFiles with both Init and Finalize: %zu of %zu; mass at ratio >= "
      "0.5: %.1f%% (paper: clearly above half)\n",
      stats.files_with_init_and_finalize, corpus.size(),
      100.0 * static_cast<double>(above_half) /
          static_cast<double>(stats.files_with_init_and_finalize));
  return 0;
}
