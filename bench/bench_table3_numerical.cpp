// Reproduces Table III: per-program M-F1 / M-Precision / M-Recall on the 11
// compiled numerical computations, with the extra validity check the paper
// performs -- predicted programs are *executed* (here: under the simulated
// MPI runtime) and their numerical output validated.
#include <cstdio>

#include "bench_common.hpp"
#include "benchsuite/benchsuite.hpp"
#include "core/evaluate.hpp"
#include "core/tagger.hpp"
#include "metrics/metrics.hpp"

int main() {
  using namespace mpirical;
  bench::print_header(
      "Table III -- performance on the numerical computations benchmark");

  auto setup = bench::ensure_trained_model();

  struct PaperRow {
    const char* name;
    double f1, p, r;
  };
  const PaperRow paper_rows[] = {
      {"Array Average", 0.88, 1.0, 0.8},
      {"Vector Dot Product", 0.88, 1.0, 0.8},
      {"Min-Max", 0.66, 1.0, 0.5},
      {"Matrix-Vector Multiplication", 0.9, 0.83, 1.0},
      {"Sum (Reduce & Gather)", 0.8, 1.0, 0.6},
      {"Merge Sort", 1.0, 1.0, 1.0},
      {"Pi Monte-Carlo", 1.0, 1.0, 1.0},
      {"Pi Riemann Sum", 1.0, 1.0, 1.0},
      {"Factorial", 0.88, 1.0, 0.8},
      {"Fibonacci", 1.0, 1.0, 1.0},
      {"Trapezoidal Rule (Integration)", 1.0, 1.0, 1.0},
  };

  core::Tagger tagger = bench::train_tagger(setup.dataset);

  metrics::PrfCounts total_seq;
  metrics::PrfCounts total_cls;
  std::printf("\n%-32s | %6s %6s %6s %9s | %6s %6s %6s | %6s %6s %6s\n",
              "Code", "cF1", "cPrec", "cRec", "RunsOK", "sF1", "sPrec",
              "sRec", "pF1", "pPrec", "pRec");

  int valid_runs = 0;
  for (const auto& prow : paper_rows) {
    const auto& prog = benchsuite::program_by_name(prow.name);
    corpus::Example ex;
    const bool ok = corpus::make_example(prog.source, 320, ex);
    if (!ok) {
      std::printf("%-32s failed inclusion criteria!\n", prow.name);
      continue;
    }
    // Translation engine (the paper's formulation).
    core::ExamplePrediction pred;
    const core::EvalSummary one =
        core::evaluate_one(setup.model, ex, /*beam=*/1, /*tolerance=*/1,
                           &pred);
    total_seq += one.m_counts;
    // Classification engine (the paper's measurement framing).
    const auto cls_calls = tagger.predict(ex.input_code);
    const auto cls =
        metrics::match_call_sites(cls_calls, ex.ground_truth, 1);
    total_cls += cls;

    // Paper-style validity: does the translation engine's predicted program
    // execute and produce the right numerical answer?
    std::string run_status = "no";
    if (pred.parsed) {
      const auto validation = benchsuite::validate(prog, pred.predicted_code);
      if (validation.valid) {
        run_status = "yes";
        ++valid_runs;
      } else if (validation.ran) {
        run_status = "ran";
      }
    }

    std::printf(
        "%-32s | %6.2f %6.2f %6.2f %9s | %6.2f %6.2f %6.2f | %6.2f %6.2f "
        "%6.2f\n",
        prow.name, cls.f1(), cls.precision(), cls.recall(),
        run_status.c_str(), one.m_counts.f1(), one.m_counts.precision(),
        one.m_counts.recall(), prow.f1, prow.p, prow.r);
  }

  std::printf(
      "%-32s | %6.2f %6.2f %6.2f %9s | %6.2f %6.2f %6.2f | %6.2f %6.2f "
      "%6.2f\n",
      "Total", total_cls.f1(), total_cls.precision(), total_cls.recall(),
      (std::to_string(valid_runs) + "/11").c_str(), total_seq.f1(),
      total_seq.precision(), total_seq.recall(), 0.91, 0.98, 0.86);
  std::printf(
      "\nColumns: c* = classification engine (tagger), s* = translation "
      "engine (seq2seq), p* = paper. 'RunsOK' validates the translation "
      "engine's predicted program under the simulated MPI runtime.\n");
  return 0;
}
