// Decode-engine bench: batched beam-step engine (decode_batch) vs the PR 1
// per-hypothesis reference path AND vs the PR 2 configuration (batched
// decode, per-source encode -- MPIRICAL_ENCODE_BATCH=0), greedy and beam-4,
// over a corpus-shaped set of requests. The default path's wall time is
// split into encode_ms (padded batched encoder + cross-K/V precompute) and
// decode_ms (wave stepping) so the encoder speedup is visible in the
// trajectory. Emits one machine-readable JSON line per case on stdout
// (human-readable table on stderr) so decode perf trajectories can be
// recorded as BENCH_decode.json across PRs:
//
//   ./bench_decode > BENCH_decode.json
//
// MPIRICAL_BENCH_SMOKE=1 shrinks the workload to a few seconds for CI;
// MPIRICAL_BENCH_DECODE_EXAMPLES / _SRC_LEN / _MAX_LEN override the shape.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "nn/infer.hpp"
#include "nn/packed_model.hpp"
#include "nn/transformer.hpp"
#include "snapshot/snapshot.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

using namespace mpirical;
using bench::smoke_mode;

std::size_t env_or(const char* name, std::size_t fallback) {
  return bench::env_size(name, fallback);
}

struct Case {
  const char* mode;
  int beam_width;
};

/// Saves an env var, sets it for the scope of one timed configuration, and
/// restores the caller's value on destruction.
struct EnvOverride {
  EnvOverride(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    setenv(name, value, 1);
  }
  ~EnvOverride() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

/// Elements of one packed weight panel: columns padded to the 16-wide
/// register tile, times the k depth -- the exact PackedPanelB(I8) layout.
std::size_t panel_elems(int n, int k) {
  return static_cast<std::size_t>((n + 15) / 16 * 16) *
         static_cast<std::size_t>(k);
}

/// Packed weight elements every decode wave step streams: all decoder-layer
/// projections plus the vocab output projection. f32 streams 4 bytes per
/// element, int8 one.
std::size_t decode_step_weight_elems(const nn::TransformerConfig& cfg) {
  const int d = cfg.d_model;
  std::size_t elems = 0;
  for (int l = 0; l < cfg.decoder_layers; ++l) {
    elems += 6 * panel_elems(d, d);  // self q/k/v/o + cross q/o
    elems += panel_elems(cfg.ffn_dim, d) + panel_elems(d, cfg.ffn_dim);
  }
  elems += panel_elems(cfg.vocab_size, d);
  return elems;
}

}  // namespace

int main() {
  const bool smoke = smoke_mode();
  const std::size_t examples =
      env_or("MPIRICAL_BENCH_DECODE_EXAMPLES", smoke ? 8 : 48);
  const int src_len =
      static_cast<int>(env_or("MPIRICAL_BENCH_DECODE_SRC_LEN", smoke ? 48 : 160));
  const int max_len =
      static_cast<int>(env_or("MPIRICAL_BENCH_DECODE_MAX_LEN", smoke ? 24 : 64));

  // The production model shape (core::ModelConfig defaults) with a
  // vocab-sized output projection; weights are random -- decode cost does
  // not depend on what the tokens say, and random models rarely emit EOS,
  // which keeps every request decoding to max_len for stable timing.
  nn::TransformerConfig cfg;
  cfg.vocab_size = 800;
  cfg.d_model = 96;
  cfg.heads = 4;
  cfg.ffn_dim = 192;
  cfg.encoder_layers = 2;
  cfg.decoder_layers = 2;
  cfg.max_len = src_len + max_len + 8;
  cfg.dropout = 0.0f;
  Rng rng(4242);
  nn::Transformer model(cfg, rng);

  constexpr int kSos = 1;
  constexpr int kEos = 2;
  std::vector<std::vector<int>> sources(examples);
  for (auto& src : sources) {
    src.resize(static_cast<std::size_t>(src_len));
    for (auto& id : src) {
      id = 3 + static_cast<int>(rng.next_below(
                   static_cast<std::uint64_t>(cfg.vocab_size) - 3));
    }
  }

  std::fprintf(stderr,
               "decode bench: %zu examples, src_len=%d, max_len=%d%s\n",
               examples, src_len, max_len, smoke ? " (smoke)" : "");

  // Snapshot footprint of this model in both weight encodings (the int8
  // sections are what MPIRICAL_SNAPSHOT_INT8 would write).
  std::size_t snapshot_bytes_f32 = 0, snapshot_bytes_int8 = 0;
  {
    snapshot::Builder b_f32, b_i8;
    model.to_snapshot(b_f32, /*quantize_weights=*/false);
    model.to_snapshot(b_i8, /*quantize_weights=*/true);
    snapshot_bytes_f32 = b_f32.finish().size();
    snapshot_bytes_int8 = b_i8.finish().size();
  }
  const std::size_t wave_weight_elems = decode_step_weight_elems(cfg);

  for (const Case c : {Case{"greedy", 1}, Case{"beam4", 4}}) {
    std::vector<nn::DecodeRequest> reqs(examples);
    for (std::size_t i = 0; i < examples; ++i) {
      reqs[i] = {sources[i], kSos, kEos, max_len, c.beam_width};
    }

    Timer ref_timer;
    std::vector<nn::DecodeResult> ref(examples);
    for (std::size_t i = 0; i < examples; ++i) {
      ref[i] = nn::decode_reference(model, sources[i], kSos, kEos, max_len,
                                    c.beam_width);
    }
    const double ref_s = ref_timer.seconds();

    // The PR 2 configuration: batched decode waves, per-source encoding.
    // Save and restore the toggle rather than unsetting it, so a caller's
    // explicit MPIRICAL_ENCODE_BATCH survives the bench.
    const char* saved_toggle_c = std::getenv("MPIRICAL_ENCODE_BATCH");
    const std::string saved_toggle = saved_toggle_c ? saved_toggle_c : "";
    setenv("MPIRICAL_ENCODE_BATCH", "0", 1);
    Timer per_source_timer;
    const auto per_source = nn::decode_batch(model, reqs);
    const double per_source_s = per_source_timer.seconds();
    if (saved_toggle_c) {
      setenv("MPIRICAL_ENCODE_BATCH", saved_toggle.c_str(), 1);
    } else {
      unsetenv("MPIRICAL_ENCODE_BATCH");
    }

    // The default path: padded batched encoder feeding the decode waves.
    // Pack-cache deltas bracket the timed region: the greedy case pays the
    // one-time lazy packs (pack_ms > 0, misses), beam4 should run entirely
    // on cache hits with pack_ms == 0 -- the steady-state claim the
    // trajectory pins.
    nn::DecodeBatchStats stats;
    const nn::PackCacheStats pc_before = nn::pack_cache_stats();
    Timer batched_timer;
    const auto batched = nn::decode_batch(model, reqs, &stats);
    const double batched_s = batched_timer.seconds();
    const nn::PackCacheStats pc_after = nn::pack_cache_stats();

    // The int8 weights-only configuration of the same batched path: weight
    // panels quantize at pack time, activations stay f32.
    nn::DecodeBatchStats stats_i8;
    double int8_s = 0.0;
    std::vector<nn::DecodeResult> int8_results;
    const nn::PackCacheStats pc_i8_before = nn::pack_cache_stats();
    {
      EnvOverride i8("MPIRICAL_DECODE_INT8", "1");
      Timer int8_timer;
      int8_results = nn::decode_batch(model, reqs, &stats_i8);
      int8_s = int8_timer.seconds();
    }
    const nn::PackCacheStats pc_i8_after = nn::pack_cache_stats();

    // Separate counters so the JSON trajectory can attribute a divergence
    // to the batched encoder vs the per-source decode configuration.
    std::size_t mismatches_batched = 0;
    std::size_t mismatches_per_source = 0;
    std::size_t mismatches_int8 = 0;  // vs the f32 batched decode
    std::size_t tokens = 0;
    for (std::size_t i = 0; i < examples; ++i) {
      if (batched[i].tokens != ref[i].tokens) ++mismatches_batched;
      if (per_source[i].tokens != ref[i].tokens) ++mismatches_per_source;
      if (int8_results[i].tokens != batched[i].tokens) ++mismatches_int8;
      tokens += batched[i].tokens.size();
    }
    const std::size_t mismatches =
        std::max(mismatches_batched, mismatches_per_source);

    const double speedup = batched_s > 0.0 ? ref_s / batched_s : 0.0;
    const double speedup_vs_per_source =
        batched_s > 0.0 ? per_source_s / batched_s : 0.0;
    std::printf(
        "{\"bench\":\"decode\",\"mode\":\"%s\",\"beam_width\":%d,"
        "\"examples\":%zu,\"src_len\":%d,\"max_len\":%d,"
        "\"seconds_reference\":%.3f,\"seconds_per_source_encode\":%.3f,"
        "\"seconds_batched\":%.3f,\"encode_ms\":%.1f,\"decode_ms\":%.1f,"
        "\"speedup\":%.3f,\"speedup_vs_per_source_encode\":%.3f,"
        "\"tokens_per_s_batched\":%.1f,"
        "\"token_mismatches\":%zu,\"token_mismatches_batched\":%zu,"
        "\"token_mismatches_per_source\":%zu,"
        "\"seconds_int8\":%.3f,\"decode_ms_int8\":%.1f,"
        "\"speedup_int8_vs_f32\":%.3f,\"token_mismatches_int8\":%zu,"
        "\"wave_weight_bytes_f32\":%zu,\"wave_weight_bytes_i8\":%zu,"
        "\"snapshot_bytes_f32\":%zu,\"snapshot_bytes_int8\":%zu%s,"
        "\"pack_ms\":%.2f,\"pack_hits\":%llu,\"pack_misses\":%llu,"
        "\"pack_ms_int8\":%.2f,"
        "\"smoke\":%s}\n",
        c.mode, c.beam_width, examples, src_len, max_len, ref_s, per_source_s,
        batched_s, stats.encode_seconds * 1e3, stats.decode_seconds * 1e3,
        speedup, speedup_vs_per_source,
        batched_s > 0.0 ? static_cast<double>(tokens) / batched_s : 0.0,
        mismatches, mismatches_batched, mismatches_per_source, int8_s,
        stats_i8.decode_seconds * 1e3,
        int8_s > 0.0 ? batched_s / int8_s : 0.0, mismatches_int8,
        wave_weight_elems * sizeof(float), wave_weight_elems,
        snapshot_bytes_f32, snapshot_bytes_int8,
        bench::pack_cache_config_json().c_str(),
        (pc_after.pack_ns - pc_before.pack_ns) / 1e6,
        static_cast<unsigned long long>(pc_after.hits - pc_before.hits),
        static_cast<unsigned long long>(pc_after.misses - pc_before.misses),
        (pc_i8_after.pack_ns - pc_i8_before.pack_ns) / 1e6,
        smoke ? "true" : "false");
    std::fflush(stdout);
    std::fprintf(stderr,
                 "%-8s reference %6.2f s  per-source-encode %6.2f s  "
                 "batched %6.2f s (encode %5.1f ms + decode %6.1f ms)  "
                 "%5.2fx vs ref, %4.2fx vs PR2  (%zu/%zu token-identical)\n",
                 c.mode, ref_s, per_source_s, batched_s,
                 stats.encode_seconds * 1e3, stats.decode_seconds * 1e3,
                 speedup, speedup_vs_per_source, examples - mismatches,
                 examples);
    std::fprintf(stderr,
                 "%-8s int8      %6.2f s (decode %6.1f ms)  %5.2fx vs f32  "
                 "(%zu/%zu match f32)  weights %zu -> %zu B/step\n",
                 c.mode, int8_s, stats_i8.decode_seconds * 1e3,
                 int8_s > 0.0 ? batched_s / int8_s : 0.0,
                 examples - mismatches_int8, examples,
                 wave_weight_elems * sizeof(float), wave_weight_elems);
  }
  return 0;
}
