// Decode-engine bench: batched beam-step engine (decode_batch) vs the PR 1
// per-hypothesis reference path AND vs the PR 2 configuration (batched
// decode, per-source encode -- MPIRICAL_ENCODE_BATCH=0), greedy and beam-4,
// over a corpus-shaped set of requests. The default path's wall time is
// split into encode_ms (padded batched encoder + cross-K/V precompute) and
// decode_ms (wave stepping) so the encoder speedup is visible in the
// trajectory. Emits one machine-readable JSON line per case on stdout
// (human-readable table on stderr) so decode perf trajectories can be
// recorded as BENCH_decode.json across PRs:
//
//   ./bench_decode > BENCH_decode.json
//
// MPIRICAL_BENCH_SMOKE=1 shrinks the workload to a few seconds for CI;
// MPIRICAL_BENCH_DECODE_EXAMPLES / _SRC_LEN / _MAX_LEN override the shape.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "nn/infer.hpp"
#include "nn/transformer.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

using namespace mpirical;
using bench::smoke_mode;

std::size_t env_or(const char* name, std::size_t fallback) {
  return bench::env_size(name, fallback);
}

struct Case {
  const char* mode;
  int beam_width;
};

}  // namespace

int main() {
  const bool smoke = smoke_mode();
  const std::size_t examples =
      env_or("MPIRICAL_BENCH_DECODE_EXAMPLES", smoke ? 8 : 48);
  const int src_len =
      static_cast<int>(env_or("MPIRICAL_BENCH_DECODE_SRC_LEN", smoke ? 48 : 160));
  const int max_len =
      static_cast<int>(env_or("MPIRICAL_BENCH_DECODE_MAX_LEN", smoke ? 24 : 64));

  // The production model shape (core::ModelConfig defaults) with a
  // vocab-sized output projection; weights are random -- decode cost does
  // not depend on what the tokens say, and random models rarely emit EOS,
  // which keeps every request decoding to max_len for stable timing.
  nn::TransformerConfig cfg;
  cfg.vocab_size = 800;
  cfg.d_model = 96;
  cfg.heads = 4;
  cfg.ffn_dim = 192;
  cfg.encoder_layers = 2;
  cfg.decoder_layers = 2;
  cfg.max_len = src_len + max_len + 8;
  cfg.dropout = 0.0f;
  Rng rng(4242);
  nn::Transformer model(cfg, rng);

  constexpr int kSos = 1;
  constexpr int kEos = 2;
  std::vector<std::vector<int>> sources(examples);
  for (auto& src : sources) {
    src.resize(static_cast<std::size_t>(src_len));
    for (auto& id : src) {
      id = 3 + static_cast<int>(rng.next_below(
                   static_cast<std::uint64_t>(cfg.vocab_size) - 3));
    }
  }

  std::fprintf(stderr,
               "decode bench: %zu examples, src_len=%d, max_len=%d%s\n",
               examples, src_len, max_len, smoke ? " (smoke)" : "");

  for (const Case c : {Case{"greedy", 1}, Case{"beam4", 4}}) {
    std::vector<nn::DecodeRequest> reqs(examples);
    for (std::size_t i = 0; i < examples; ++i) {
      reqs[i] = {sources[i], kSos, kEos, max_len, c.beam_width};
    }

    Timer ref_timer;
    std::vector<nn::DecodeResult> ref(examples);
    for (std::size_t i = 0; i < examples; ++i) {
      ref[i] = nn::decode_reference(model, sources[i], kSos, kEos, max_len,
                                    c.beam_width);
    }
    const double ref_s = ref_timer.seconds();

    // The PR 2 configuration: batched decode waves, per-source encoding.
    // Save and restore the toggle rather than unsetting it, so a caller's
    // explicit MPIRICAL_ENCODE_BATCH survives the bench.
    const char* saved_toggle_c = std::getenv("MPIRICAL_ENCODE_BATCH");
    const std::string saved_toggle = saved_toggle_c ? saved_toggle_c : "";
    setenv("MPIRICAL_ENCODE_BATCH", "0", 1);
    Timer per_source_timer;
    const auto per_source = nn::decode_batch(model, reqs);
    const double per_source_s = per_source_timer.seconds();
    if (saved_toggle_c) {
      setenv("MPIRICAL_ENCODE_BATCH", saved_toggle.c_str(), 1);
    } else {
      unsetenv("MPIRICAL_ENCODE_BATCH");
    }

    // The default path: padded batched encoder feeding the decode waves.
    nn::DecodeBatchStats stats;
    Timer batched_timer;
    const auto batched = nn::decode_batch(model, reqs, &stats);
    const double batched_s = batched_timer.seconds();

    // Separate counters so the JSON trajectory can attribute a divergence
    // to the batched encoder vs the per-source decode configuration.
    std::size_t mismatches_batched = 0;
    std::size_t mismatches_per_source = 0;
    std::size_t tokens = 0;
    for (std::size_t i = 0; i < examples; ++i) {
      if (batched[i].tokens != ref[i].tokens) ++mismatches_batched;
      if (per_source[i].tokens != ref[i].tokens) ++mismatches_per_source;
      tokens += batched[i].tokens.size();
    }
    const std::size_t mismatches =
        std::max(mismatches_batched, mismatches_per_source);

    const double speedup = batched_s > 0.0 ? ref_s / batched_s : 0.0;
    const double speedup_vs_per_source =
        batched_s > 0.0 ? per_source_s / batched_s : 0.0;
    std::printf(
        "{\"bench\":\"decode\",\"mode\":\"%s\",\"beam_width\":%d,"
        "\"examples\":%zu,\"src_len\":%d,\"max_len\":%d,"
        "\"seconds_reference\":%.3f,\"seconds_per_source_encode\":%.3f,"
        "\"seconds_batched\":%.3f,\"encode_ms\":%.1f,\"decode_ms\":%.1f,"
        "\"speedup\":%.3f,\"speedup_vs_per_source_encode\":%.3f,"
        "\"tokens_per_s_batched\":%.1f,"
        "\"token_mismatches\":%zu,\"token_mismatches_batched\":%zu,"
        "\"token_mismatches_per_source\":%zu,\"smoke\":%s}\n",
        c.mode, c.beam_width, examples, src_len, max_len, ref_s, per_source_s,
        batched_s, stats.encode_seconds * 1e3, stats.decode_seconds * 1e3,
        speedup, speedup_vs_per_source,
        batched_s > 0.0 ? static_cast<double>(tokens) / batched_s : 0.0,
        mismatches, mismatches_batched, mismatches_per_source,
        smoke ? "true" : "false");
    std::fflush(stdout);
    std::fprintf(stderr,
                 "%-8s reference %6.2f s  per-source-encode %6.2f s  "
                 "batched %6.2f s (encode %5.1f ms + decode %6.1f ms)  "
                 "%5.2fx vs ref, %4.2fx vs PR2  (%zu/%zu token-identical)\n",
                 c.mode, ref_s, per_source_s, batched_s,
                 stats.encode_seconds * 1e3, stats.decode_seconds * 1e3,
                 speedup, speedup_vs_per_source, examples - mismatches,
                 examples);
  }
  return 0;
}
