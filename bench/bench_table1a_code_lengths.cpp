// Reproduces Table Ia: distribution of program lengths in MPICodeCorpus.
#include <cstdio>

#include "bench_common.hpp"
#include "corpus/stats.hpp"

int main() {
  using namespace mpirical;
  bench::print_header(
      "Table Ia -- MPICodeCorpus code length distribution (lines)");

  const std::size_t n = bench::env_size("MPIRICAL_BENCH_STATS_CORPUS", 20000);
  const auto corpus = corpus::build_corpus(
      {n, bench::env_size("MPIRICAL_BENCH_SEED", 42)});
  const auto stats = corpus::compute_stats(corpus, 320);

  const double total = static_cast<double>(corpus.size());
  // Paper values (out of 49,684 files) for shape comparison.
  struct Row {
    const char* bucket;
    std::size_t measured;
    double paper_fraction;
  };
  const Row rows[] = {
      {"<= 10", stats.len_le_10, 2670.0 / 49684.0},
      {"11-50", stats.len_11_50, 22361.0 / 49684.0},
      {"51-99", stats.len_51_99, 14078.0 / 49684.0},
      {">= 100", stats.len_ge_100, 10575.0 / 49684.0},
  };

  std::printf("%-8s %12s %10s %18s\n", "# Line", "Amount", "Fraction",
              "Paper fraction");
  for (const auto& row : rows) {
    std::printf("%-8s %12zu %9.1f%% %17.1f%%\n", row.bucket, row.measured,
                100.0 * static_cast<double>(row.measured) / total,
                100.0 * row.paper_fraction);
  }
  std::printf(
      "\nExclusion criterion: %zu of %zu files (%.1f%%) fit the 320-token "
      "limit (paper kept ~50%% of its corpus).\n",
      stats.within_token_limit, corpus.size(),
      100.0 * static_cast<double>(stats.within_token_limit) / total);
  return 0;
}
