// Serving bench: boots the persistent daemon (tools/mpirical_served's
// run_daemon, via self-exec) against a world snapshot and drives it with an
// open-loop client -- requests arrive on a fixed schedule regardless of how
// fast results come back, the way real callers do. Measures request latency
// (p50/p99) and sustained throughput for BOTH admission policies:
//
//   continuous  requests join the running decode wave at the next step
//               boundary (the tentpole);
//   barrier     requests wait until the wave fully drains (the
//               per-wave-barrier baseline, --barrier / MPIRICAL_SERVE_BARRIER).
//
// Every served output is also checked token-identical to a local
// MpiRical::translate_batch on the same inputs -- the bench doubles as an
// end-to-end differential check over the socket.
//
// Appends one JSON line per mode to BENCH_serve.json (override the path
// with MPIRICAL_BENCH_SERVE_JSON) and echoes them to stdout; the
// human-readable table goes to stderr.
//
// Knobs: MPIRICAL_BENCH_SERVE_REQUESTS (default 48, smoke 12),
//        MPIRICAL_BENCH_SERVE_RATE_FRACTION x100 (default 85 = arrivals at
//        0.85x the locally-measured batch throughput).

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/world_snapshot.hpp"
#include "nn/packed_model.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/timer.hpp"

extern char** environ;

using namespace mpirical;

namespace {

using Clock = std::chrono::steady_clock;

std::string self_exe() {
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  MR_CHECK(len > 0, "readlink(/proc/self/exe) failed");
  buf[len] = '\0';
  return std::string(buf);
}

/// Forks + execs this binary in the daemon role (serve::maybe_run_serve_daemon
/// picks it up as the first statement of main). The environment is rebuilt
/// before fork() -- only async-signal-safe calls run in the child.
pid_t spawn_daemon(const std::string& snapshot, const std::string& socket,
                   bool barrier) {
  std::vector<std::string> env_strings;
  for (char** e = environ; *e != nullptr; ++e) {
    const char* eq = std::strchr(*e, '=');
    const std::string key(*e, eq != nullptr ? eq - *e : std::strlen(*e));
    if (key.rfind("MPIRICAL_SERVE_", 0) == 0) continue;
    env_strings.emplace_back(*e);
  }
  env_strings.push_back("MPIRICAL_SERVE_ROLE=daemon");
  env_strings.push_back("MPIRICAL_SERVE_SNAPSHOT=" + snapshot);
  env_strings.push_back("MPIRICAL_SERVE_SOCKET=" + socket);
  env_strings.push_back(std::string("MPIRICAL_SERVE_BARRIER=") +
                        (barrier ? "1" : "0"));
  std::vector<char*> envp;
  envp.reserve(env_strings.size() + 1);
  for (auto& s : env_strings) envp.push_back(s.data());
  envp.push_back(nullptr);

  const std::string exe = self_exe();
  const pid_t pid = ::fork();
  MR_CHECK(pid >= 0, "fork() failed");
  if (pid == 0) {
    char* const argv[] = {const_cast<char*>(exe.c_str()), nullptr};
    ::execve(exe.c_str(), argv, envp.data());
    _exit(127);
  }
  return pid;
}

struct ModeResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double req_per_s = 0.0;
  double wall_s = 0.0;
  std::size_t mismatches = 0;
  std::size_t joined_running_wave = 0;
};

/// One open-loop run against a freshly-booted daemon. `interval_s` is the
/// fixed inter-arrival time; sends happen on schedule from a dedicated
/// thread while this thread drains completion-order results.
ModeResult run_mode(const std::string& snapshot, const std::string& socket,
                    bool barrier,
                    const std::vector<core::MpiRical::TranslateRequest>& reqs,
                    const std::vector<std::string>& expected,
                    double interval_s) {
  const pid_t daemon_pid = spawn_daemon(snapshot, socket, barrier);
  ModeResult out;
  {
    serve::Client client(socket);
    const std::size_t n = reqs.size();
    std::vector<Clock::time_point> sent(n), done(n);
    std::mutex mu;
    std::vector<std::pair<std::uint64_t, std::size_t>> id_to_slot;
    id_to_slot.reserve(n);

    // The Client is documented single-threaded, but its two directions are
    // independent: this thread only send()s/finish()es (socket writes),
    // the main thread only recv()s (socket reads + its own parser). The
    // mutex is held ACROSS each send so a result cannot be matched before
    // its id is recorded.
    const Clock::time_point start = Clock::now();
    std::thread sender([&] {
      for (std::size_t i = 0; i < n; ++i) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(interval_s *
                                                      static_cast<double>(i))));
        std::lock_guard<std::mutex> lock(mu);
        sent[i] = Clock::now();
        const std::uint64_t id =
            client.send(reqs[i].input_code, reqs[i].input_xsbt);
        id_to_slot.emplace_back(id, i);
      }
      client.finish();
    });

    std::size_t received = 0;
    Clock::time_point last_done = start;
    while (received < n) {
      auto res = client.recv();
      MR_CHECK(res.has_value(), "daemon closed before delivering all results");
      const Clock::time_point now = Clock::now();
      std::size_t slot = n;
      {
        std::lock_guard<std::mutex> lock(mu);
        for (const auto& [id, s] : id_to_slot) {
          if (id == res->id) slot = s;
        }
      }
      MR_CHECK(slot < n, "daemon returned an unknown result id");
      done[slot] = now;
      last_done = now;
      if (res->joined_running_wave != 0) ++out.joined_running_wave;
      if (res->output_code != expected[slot]) ++out.mismatches;
      ++received;
    }
    sender.join();

    std::vector<double> latencies_ms(n);
    for (std::size_t i = 0; i < n; ++i) {
      latencies_ms[i] =
          std::chrono::duration<double, std::milli>(done[i] - sent[i]).count();
    }
    std::sort(latencies_ms.begin(), latencies_ms.end());
    out.p50_ms = bench::percentile(latencies_ms, 0.50);
    out.p99_ms = bench::percentile(latencies_ms, 0.99);
    out.wall_s = std::chrono::duration<double>(last_done - start).count();
    out.req_per_s =
        out.wall_s > 0.0 ? static_cast<double>(n) / out.wall_s : 0.0;
  }

  // Drain-and-exit handshake on a second connection, then reap the daemon.
  {
    serve::Client stopper(socket);
    stopper.send_shutdown();
    stopper.finish();
    while (stopper.recv().has_value()) {
    }
  }
  int status = 0;
  MR_CHECK(::waitpid(daemon_pid, &status, 0) == daemon_pid,
           "waitpid(daemon) failed");
  MR_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0,
           "serve daemon exited abnormally");
  return out;
}

}  // namespace

int main() {
  // Re-exec'd child? Becomes the daemon and never returns.
  serve::maybe_run_serve_daemon();

  const bool smoke = bench::smoke_mode();
  if (smoke) {
    bench::setenv_default("MPIRICAL_BENCH_CORPUS", "320");
    bench::setenv_default("MPIRICAL_BENCH_EPOCHS", "1");
    bench::setenv_default("MPIRICAL_BENCH_TAGGER_EPOCHS", "1");
    // Small waves make the open-loop arrivals actually join running waves
    // instead of all fitting into one admission.
    bench::setenv_default("MPIRICAL_DECODE_WAVE", "8");
  }
  const std::size_t n_requests =
      bench::env_size("MPIRICAL_BENCH_SERVE_REQUESTS", smoke ? 12 : 48);
  const double rate_fraction =
      static_cast<double>(support::env_long("MPIRICAL_BENCH_SERVE_RATE_FRACTION",
                                            85, 1, 1000)) /
      100.0;

  bench::TrainedSetup setup = bench::ensure_trained_model();

  // The daemon maps the model from a world snapshot; an eval-shape snapshot
  // with an empty split carries exactly the weights and nothing else.
  const std::string artifacts = bench::artifacts_dir();
  const std::string snapshot_path = artifacts + "/serve_world.mpsn";
  core::write_eval_snapshot(snapshot_path, setup.model, {});

  std::vector<core::MpiRical::TranslateRequest> reqs(n_requests);
  const std::vector<corpus::Example>& pool =
      setup.dataset.test.empty() ? setup.dataset.train : setup.dataset.test;
  MR_CHECK(!pool.empty(), "dataset has no examples to serve");
  for (std::size_t i = 0; i < n_requests; ++i) {
    const corpus::Example& ex = pool[i % pool.size()];
    reqs[i] = {ex.input_code, ex.input_xsbt};
  }

  // Local ground truth: what the served outputs must be token-identical to,
  // and the throughput the open-loop arrival rate is calibrated against.
  // Pack-cache delta brackets it: the daemon packs in its own forked
  // process, so the client-side oracle is where this process's one-time
  // pack cost (and the hit/miss trajectory) is visible.
  const nn::PackCacheStats pc_before = nn::pack_cache_stats();
  Timer local_timer;
  const std::vector<std::string> expected = setup.model.translate_batch(reqs);
  const double local_s = local_timer.seconds();
  const nn::PackCacheStats pc_after = nn::pack_cache_stats();
  const double local_rps =
      local_s > 0.0 ? static_cast<double>(n_requests) / local_s : 1.0;
  const double interval_s = 1.0 / (local_rps * rate_fraction);

  std::fprintf(stderr,
               "serve bench: %zu requests, local batch %.2fs (%.1f req/s), "
               "open-loop arrivals at %.1f req/s%s\n",
               n_requests, local_s, local_rps, local_rps * rate_fraction,
               smoke ? " (smoke)" : "");

  struct Mode {
    const char* name;
    bool barrier;
  };
  ModeResult results[2];
  const Mode modes[2] = {{"continuous", false}, {"barrier", true}};
  for (int m = 0; m < 2; ++m) {
    const std::string socket = artifacts + "/serve_bench.sock";
    results[m] = run_mode(snapshot_path, socket, modes[m].barrier, reqs,
                          expected, interval_s);
    std::fprintf(stderr,
                 "%-10s p50 %8.1f ms  p99 %8.1f ms  %6.1f req/s  "
                 "joined_running_wave %zu  (%zu/%zu token-identical)\n",
                 modes[m].name, results[m].p50_ms, results[m].p99_ms,
                 results[m].req_per_s, results[m].joined_running_wave,
                 n_requests - results[m].mismatches, n_requests);
  }

  const double p99_speedup = results[0].p99_ms > 0.0
                                 ? results[1].p99_ms / results[0].p99_ms
                                 : 0.0;
  std::fprintf(stderr,
               "continuous vs barrier: p99 %.2fx lower, throughput %.2fx\n",
               p99_speedup,
               results[1].req_per_s > 0.0
                   ? results[0].req_per_s / results[1].req_per_s
                   : 0.0);

  std::string json_path = "BENCH_serve.json";
  if (const char* override_path = std::getenv("MPIRICAL_BENCH_SERVE_JSON")) {
    json_path = override_path;
  }
  for (int m = 0; m < 2; ++m) {
    char line[768];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\":\"serve\",\"mode\":\"%s\",\"requests\":%zu,"
        "\"arrival_req_per_s\":%.2f,\"p50_ms\":%.2f,\"p99_ms\":%.2f,"
        "\"sustained_req_per_s\":%.2f,\"wall_s\":%.3f,"
        "\"joined_running_wave\":%zu,\"token_mismatches\":%zu,"
        "\"local_batch_req_per_s\":%.2f%s,\"pack_ms\":%.2f,"
        "\"pack_hits\":%llu,\"pack_misses\":%llu,\"smoke\":%s}",
        modes[m].name, n_requests, local_rps * rate_fraction,
        results[m].p50_ms, results[m].p99_ms, results[m].req_per_s,
        results[m].wall_s, results[m].joined_running_wave,
        results[m].mismatches, local_rps,
        bench::pack_cache_config_json().c_str(),
        (pc_after.pack_ns - pc_before.pack_ns) / 1e6,
        static_cast<unsigned long long>(pc_after.hits - pc_before.hits),
        static_cast<unsigned long long>(pc_after.misses - pc_before.misses),
        smoke ? "true" : "false");
    bench::append_json_line(json_path, line);
    std::printf("%s\n", line);
  }
  std::fflush(stdout);

  // The bench is also a differential check: served outputs must match the
  // local batch bit-for-bit in both admission modes.
  MR_CHECK(results[0].mismatches == 0 && results[1].mismatches == 0,
           "served outputs diverged from local translate_batch");
  return 0;
}
