#include "bench_common.hpp"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "core/world_snapshot.hpp"
#include "nn/packed_model.hpp"
#include "shard/eval.hpp"
#include "snapshot/snapshot.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/io.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"

namespace mpirical::bench {

std::size_t env_size(const char* name, std::size_t fallback) {
  // Sizes clamp to [1, 1e9]; garbage (MPIRICAL_BENCH_CORPUS=2k6) throws
  // instead of silently running the bench at the default size.
  return static_cast<std::size_t>(support::env_long(
      name, static_cast<long>(fallback), 1, 1000000000L));
}

bool smoke_mode() {
  const char* e = std::getenv("MPIRICAL_BENCH_SMOKE");
  return e != nullptr && e[0] != '\0' && e[0] != '0';
}

void setenv_default(const char* name, const char* value) {
  if (std::getenv(name) == nullptr) setenv(name, value, 1);
}

void append_json_line(const std::string& path, const std::string& line) {
  io::append_line(path, line);
}

std::string pack_cache_config_json() {
  return std::string(",\"pack_cache\":") +
         (nn::pack_cache_enabled() ? "true" : "false");
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t n = sorted.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

bool maybe_run_eval_shard_worker() {
  if (!shard::is_worker_role()) return false;
  Timer startup_timer;
  // The driver's stdout carries the bench tables/JSON; route this worker's
  // setup chatter to stderr instead.
  std::fflush(stdout);
  dup2(2, 1);

  if (snapshot::snapshot_enabled()) {
    // Snapshot deployment: the driver ships the world (model + exact eval
    // split) as an mmap-able file, path-over-pipe. No corpus rebuild, no
    // checkpoint re-parse -- startup is mmap + pointer fixups.
    const auto transport = shard::worker_transport();
    shard::run_worker_from_snapshot(*transport,
                                    startup_timer.seconds() * 1e3);
    return true;
  }

  // Legacy deployment (MPIRICAL_SNAPSHOT=0): rebuild the same model and
  // test split from the inherited environment. The driver already
  // (re)trained and cached the checkpoint before spawning workers; a worker
  // must always load that cache, even when the driver itself was launched
  // with MPIRICAL_BENCH_RETRAIN=1.
  unsetenv("MPIRICAL_BENCH_RETRAIN");
  Timer load_timer;
  TrainedSetup setup = ensure_trained_model();
  const std::size_t limit = env_size("MPIRICAL_BENCH_EVAL_LIMIT", 160);
  std::vector<corpus::Example> test = setup.dataset.test;
  if (test.size() > limit) test.resize(limit);
  const double load_ms = load_timer.seconds() * 1e3;

  const auto transport = shard::worker_transport();
  shard::send_startup_info(*transport, startup_timer.seconds() * 1e3,
                           load_ms);
  shard::run_worker(setup.model, test, *transport);
  return true;
}

std::string artifacts_dir() {
  std::string dir = "mpirical_artifacts";
  if (const char* value = std::getenv("MPIRICAL_ARTIFACTS")) dir = value;
  std::filesystem::create_directories(dir);
  return dir;
}

corpus::DatasetConfig default_dataset_config() {
  corpus::DatasetConfig config;
  config.corpus_size = env_size("MPIRICAL_BENCH_CORPUS", 2600);
  config.seed = env_size("MPIRICAL_BENCH_SEED", 42);
  config.max_tokens = 320;  // the paper's exclusion criterion
  return config;
}

core::ModelConfig default_model_config() {
  core::ModelConfig config;
  config.epochs = static_cast<int>(env_size("MPIRICAL_BENCH_EPOCHS", 5));
  config.seed = env_size("MPIRICAL_BENCH_SEED", 42) * 7919 + 1;
  config.max_src_tokens = 384;  // code + [SEP] + truncated X-SBT
  config.max_tgt_tokens = 336;  // label code (<= 320 tokens) + [EOS]
  return config;
}

namespace {

std::string checkpoint_path() {
  return artifacts_dir() + "/mpirical_model.bin";
}
std::string log_path() { return artifacts_dir() + "/training_log.tsv"; }

bool retrain_forced() {
  const char* value = std::getenv("MPIRICAL_BENCH_RETRAIN");
  return value != nullptr && std::string(value) == "1";
}

}  // namespace

std::vector<core::EpochLog> load_training_log() {
  std::vector<core::EpochLog> logs;
  if (!std::filesystem::exists(log_path())) return logs;
  const std::string data = io::read_file(log_path());
  for (const auto& line : split_lines(data)) {
    std::istringstream is(line);
    core::EpochLog log;
    if (is >> log.epoch >> log.train_loss >> log.val_loss >>
        log.val_token_accuracy >> log.seconds) {
      logs.push_back(log);
    }
  }
  return logs;
}

TrainedSetup ensure_trained_model() {
  TrainedSetup setup;

  // A pre-built world snapshot short-circuits everything: model + all three
  // splits mmap in, with corpus construction and training skipped.
  // MPIRICAL_BENCH_RETRAIN=1 wins over the file: a forced retrain must not
  // silently evaluate a stale snapshot (the fresh world is rewritten below).
  const char* snap_path = std::getenv("MPIRICAL_SNAPSHOT_PATH");
  if (snapshot::snapshot_enabled() && snap_path != nullptr &&
      !retrain_forced() && io::file_exists(snap_path)) {
    Timer load_timer;
    core::World world = core::load_world_snapshot(snap_path);
    MR_CHECK(world.has_dataset,
             std::string("MPIRICAL_SNAPSHOT_PATH names an eval-only "
                         "snapshot (benches need the dataset shape): ") +
                 snap_path);
    setup.model = std::move(world.model);
    setup.dataset = std::move(world.dataset);
    setup.epoch_logs = load_training_log();
    setup.from_snapshot = true;
    setup.snapshot_load_ms = load_timer.seconds() * 1e3;
    std::printf(
        "[setup] world snapshot %s: %zu train / %zu val / %zu test "
        "examples, mmap-loaded in %.1f ms\n",
        snap_path, setup.dataset.train.size(), setup.dataset.val.size(),
        setup.dataset.test.size(), setup.snapshot_load_ms);
    return setup;
  }

  const corpus::DatasetConfig dcfg = default_dataset_config();
  std::printf("[setup] building corpus (%zu programs, seed %llu)...\n",
              dcfg.corpus_size,
              static_cast<unsigned long long>(dcfg.seed));
  Timer timer;
  setup.dataset = corpus::build_dataset(dcfg);
  std::printf(
      "[setup] dataset: %zu examples (train %zu / val %zu / test %zu), "
      "%zu excluded by the %zu-token criterion, %.1fs\n",
      setup.dataset.example_count(), setup.dataset.train.size(),
      setup.dataset.val.size(), setup.dataset.test.size(),
      setup.dataset.excluded_too_long, dcfg.max_tokens, timer.seconds());

  // After building (or loading) the model, optionally materialize the
  // dataset snapshot so the next run starts from the file.
  auto maybe_write_snapshot = [&](const TrainedSetup& s) {
    if (snapshot::snapshot_enabled() && snap_path != nullptr &&
        (retrain_forced() || !io::file_exists(snap_path))) {
      Timer write_timer;
      core::write_dataset_snapshot(snap_path, s.model, s.dataset);
      std::printf("[setup] wrote world snapshot to %s (%.1f ms)\n",
                  snap_path, write_timer.seconds() * 1e3);
    }
  };

  if (!retrain_forced() && std::filesystem::exists(checkpoint_path())) {
    std::printf("[setup] loading cached model from %s\n",
                checkpoint_path().c_str());
    setup.model = core::MpiRical::load(checkpoint_path());
    setup.epoch_logs = load_training_log();
    maybe_write_snapshot(setup);
    return setup;
  }

  const core::ModelConfig mcfg = default_model_config();
  setup.model = core::MpiRical::create(setup.dataset, mcfg);
  std::printf(
      "[setup] training MPI-RICAL: vocab %zu, %zu parameters, %d epochs\n",
      setup.model.vocab().size(), setup.model.transformer().parameter_count(),
      mcfg.epochs);
  setup.epoch_logs = setup.model.train(
      setup.dataset, [](const core::EpochLog& log) {
        std::printf(
            "[train] epoch %d  train_loss %.4f  val_loss %.4f  val_acc "
            "%.4f  (%.1fs)\n",
            log.epoch, log.train_loss, log.val_loss, log.val_token_accuracy,
            log.seconds);
        std::fflush(stdout);
      });

  setup.model.save(checkpoint_path());
  std::string log_data;
  for (const auto& log : setup.epoch_logs) {
    log_data += std::to_string(log.epoch) + "\t" +
                std::to_string(log.train_loss) + "\t" +
                std::to_string(log.val_loss) + "\t" +
                std::to_string(log.val_token_accuracy) + "\t" +
                std::to_string(log.seconds) + "\n";
  }
  io::write_file(log_path(), log_data);
  std::printf("[setup] checkpoint saved to %s\n", checkpoint_path().c_str());
  maybe_write_snapshot(setup);
  return setup;
}

core::Tagger train_tagger(const corpus::Dataset& dataset) {
  core::TaggerConfig tcfg;
  tcfg.epochs = static_cast<int>(env_size("MPIRICAL_BENCH_TAGGER_EPOCHS", 6));
  tcfg.max_src_tokens = 420;  // code tokens + [NL] markers of a 320-token file
  tcfg.lr = 2e-3f;
  tcfg.warmup_steps = 40;
  core::Tagger tagger = core::Tagger::create(dataset, tcfg);
  std::printf("[setup] training classification engine (%zu labels, %d "
              "epochs)...\n",
              tagger.label_count(), tcfg.epochs);
  tagger.train(dataset, [](const core::TaggerEpochLog& log) {
    std::printf("[tagger] epoch %d train %.4f val %.4f slot_acc %.4f (%.1fs)\n",
                log.epoch, log.train_loss, log.val_loss,
                log.val_slot_accuracy, log.seconds);
    std::fflush(stdout);
  });
  return tagger;
}

void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace mpirical::bench
