// Reproduces Table Ib: MPI Common Core function counts (per file) and the
// exponentially decaying frequency profile of MPI functions in the corpus.
#include <cstdio>

#include "bench_common.hpp"
#include "corpus/stats.hpp"
#include "mpidb/catalog.hpp"

int main() {
  using namespace mpirical;
  bench::print_header(
      "Table Ib -- MPI Common Core function counts (per file)");

  const std::size_t n = bench::env_size("MPIRICAL_BENCH_STATS_CORPUS", 20000);
  const auto corpus = corpus::build_corpus(
      {n, bench::env_size("MPIRICAL_BENCH_SEED", 42)});
  const auto stats = corpus::compute_stats(corpus);
  const auto sorted = corpus::sorted_function_counts(stats);

  // Paper counts out of 59,446 files for the shape column.
  const std::pair<const char*, int> paper[] = {
      {"MPI_Finalize", 35983}, {"MPI_Comm_rank", 32312},
      {"MPI_Comm_size", 28742}, {"MPI_Init", 25114},
      {"MPI_Recv", 10340},     {"MPI_Send", 9841},
      {"MPI_Reduce", 8503},    {"MPI_Bcast", 5296},
  };

  std::printf("%-28s %10s %8s %14s\n", "Function", "Amount", "Core?",
              "Paper amount");
  int printed = 0;
  for (const auto& [name, count] : sorted) {
    if (printed >= 16) break;
    int paper_count = -1;
    for (const auto& [pname, pcount] : paper) {
      if (name == pname) paper_count = pcount;
    }
    std::printf("%-28s %10zu %8s ", name.c_str(), count,
                mpidb::is_common_core(name) ? "core" : "");
    if (paper_count >= 0) {
      std::printf("%14d\n", paper_count);
    } else {
      std::printf("%14s\n", "-");
    }
    ++printed;
  }
  std::printf("\nDistinct MPI functions observed: %zu (catalog: %zu)\n",
              stats.function_file_counts.size(), mpidb::catalog_size());
  return 0;
}
