// Ablation: does the X-SBT component of the encoder input (inherited from
// SPT-Code) help on this task? Trains two small models -- code+X-SBT vs
// code-only -- on the same dataset and compares Table II style scores.
#include <cstdio>

#include "bench_common.hpp"
#include "core/evaluate.hpp"

int main() {
  using namespace mpirical;
  bench::print_header("Ablation -- encoder input: code + X-SBT vs code only");

  corpus::DatasetConfig dcfg;
  dcfg.corpus_size = bench::env_size("MPIRICAL_ABLATION_CORPUS", 900);
  dcfg.seed = 911;
  dcfg.max_tokens = 200;  // small, fast configuration for the ablation
  const corpus::Dataset dataset = corpus::build_dataset(dcfg);
  std::printf("[setup] ablation dataset: %zu train / %zu test examples\n",
              dataset.train.size(), dataset.test.size());

  for (const bool use_xsbt : {true, false}) {
    core::ModelConfig mcfg;
    mcfg.use_xsbt = use_xsbt;
    mcfg.max_src_tokens = use_xsbt ? 288 : 208;
    mcfg.max_tgt_tokens = 216;
    mcfg.epochs = static_cast<int>(
        bench::env_size("MPIRICAL_ABLATION_EPOCHS", 4));
    mcfg.seed = 4242;

    core::MpiRical model = core::MpiRical::create(dataset, mcfg);
    std::printf("\n[variant %s] training (%d epochs)...\n",
                use_xsbt ? "code+X-SBT" : "code-only", mcfg.epochs);
    model.train(dataset, [](const core::EpochLog& log) {
      std::printf("[train] epoch %d train %.4f val %.4f acc %.4f (%.1fs)\n",
                  log.epoch, log.train_loss, log.val_loss,
                  log.val_token_accuracy, log.seconds);
      std::fflush(stdout);
    });

    std::vector<corpus::Example> test = dataset.test;
    if (test.size() > 80) test.resize(80);
    const core::EvalSummary s = core::evaluate_model(model, test);
    std::printf(
        "[variant %s] M-F1 %.3f  M-P %.3f  M-R %.3f  BLEU %.3f  ROUGE-L "
        "%.3f  ACC %.3f\n",
        use_xsbt ? "code+X-SBT" : "code-only", s.m_counts.f1(),
        s.m_counts.precision(), s.m_counts.recall(), s.bleu, s.rouge_l,
        s.acc);
  }
  return 0;
}
