// Ablation: translation framing (the paper's model) vs the explicit
// classification framing (encoder-only tagger over insertion slots), plus
// the sensitivity of the scores to the location tolerance (0 / 1 / 2 lines).
#include <cstdio>

#include "bench_common.hpp"
#include "core/evaluate.hpp"
#include "core/tagger.hpp"
#include "metrics/metrics.hpp"

int main() {
  using namespace mpirical;
  bench::print_header(
      "Ablation -- translation vs classification framing; tolerance sweep");

  corpus::DatasetConfig dcfg;
  dcfg.corpus_size = bench::env_size("MPIRICAL_ABLATION_CORPUS", 900);
  dcfg.seed = 1337;
  dcfg.max_tokens = 200;
  const corpus::Dataset dataset = corpus::build_dataset(dcfg);
  std::printf("[setup] ablation dataset: %zu train / %zu test examples\n",
              dataset.train.size(), dataset.test.size());

  std::vector<corpus::Example> test = dataset.test;
  if (test.size() > 80) test.resize(80);

  // --- Translation engine (seq2seq, the paper's MPI-RICAL). ---
  core::ModelConfig mcfg;
  mcfg.max_src_tokens = 288;
  mcfg.max_tgt_tokens = 216;
  mcfg.epochs =
      static_cast<int>(bench::env_size("MPIRICAL_ABLATION_EPOCHS", 4));
  mcfg.seed = 777;
  core::MpiRical seq2seq = core::MpiRical::create(dataset, mcfg);
  std::printf("\n[translation] training (%d epochs)...\n", mcfg.epochs);
  seq2seq.train(dataset, [](const core::EpochLog& log) {
    std::printf("[train] epoch %d train %.4f val %.4f (%.1fs)\n", log.epoch,
                log.train_loss, log.val_loss, log.seconds);
    std::fflush(stdout);
  });

  // --- Classification engine (tagger over insertion slots). ---
  core::TaggerConfig tcfg;
  tcfg.epochs = mcfg.epochs + 2;
  tcfg.max_src_tokens = 208;
  core::Tagger tagger = core::Tagger::create(dataset, tcfg);
  std::printf("\n[classification] %zu compound labels; training...\n",
              tagger.label_count());
  tagger.train(dataset, [](const core::TaggerEpochLog& log) {
    std::printf("[train] epoch %d train %.4f val %.4f slot_acc %.4f (%.1fs)\n",
                log.epoch, log.train_loss, log.val_loss,
                log.val_slot_accuracy, log.seconds);
    std::fflush(stdout);
  });

  std::printf("\n%-18s %10s %6s %6s %6s\n", "Engine", "Tolerance", "F1",
              "Prec", "Rec");
  for (const int tolerance : {0, 1, 2}) {
    const core::EvalSummary s =
        core::evaluate_model(seq2seq, test, /*beam=*/1, tolerance);
    std::printf("%-18s %10d %6.3f %6.3f %6.3f\n", "translation", tolerance,
                s.m_counts.f1(), s.m_counts.precision(), s.m_counts.recall());
  }
  for (const int tolerance : {0, 1, 2}) {
    metrics::PrfCounts counts;
    for (const auto& ex : test) {
      const auto predicted = tagger.predict(ex.input_code);
      counts += metrics::match_call_sites(predicted, ex.ground_truth,
                                          tolerance);
    }
    std::printf("%-18s %10d %6.3f %6.3f %6.3f\n", "classification",
                tolerance, counts.f1(), counts.precision(), counts.recall());
  }
  std::printf(
      "\nThe paper trains translation but *measures* classification; this "
      "table shows both engines under the same metric.\n");
  return 0;
}
