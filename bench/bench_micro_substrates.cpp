// google-benchmark microbenchmarks for the substrates: lexing, parsing,
// standardization, X-SBT, removal, tokenization, tensor matmul/attention,
// incremental decode steps, and simulated MPI collectives.
#include <benchmark/benchmark.h>

#include "cast/printer.hpp"
#include "clex/lexer.hpp"
#include "corpus/generator.hpp"
#include "corpus/removal.hpp"
#include "cparse/parser.hpp"
#include "mpisim/runner.hpp"
#include "nn/infer.hpp"
#include "nn/transformer.hpp"
#include "support/rng.hpp"
#include "tensor/kernels.hpp"
#include "tensor/tensor.hpp"
#include "toklib/vocab.hpp"
#include "xsbt/xsbt.hpp"

namespace {

using namespace mpirical;

const std::string& sample_program() {
  static const std::string source = [] {
    Rng rng(7);
    return corpus::generate_program(corpus::Family::kHalo1D, rng);
  }();
  return source;
}

void BM_Lexer(benchmark::State& state) {
  const std::string& src = sample_program();
  std::size_t tokens = 0;
  for (auto _ : state) {
    auto toks = lex::tokenize(src);
    tokens += toks.size();
    benchmark::DoNotOptimize(toks);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_Lexer);

void BM_Parser(benchmark::State& state) {
  const std::string& src = sample_program();
  for (auto _ : state) {
    auto tree = parse::parse_translation_unit(src);
    benchmark::DoNotOptimize(tree);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_Parser);

void BM_Standardize(benchmark::State& state) {
  const auto tree = parse::parse_translation_unit(sample_program());
  for (auto _ : state) {
    auto code = ast::print_code(*tree);
    benchmark::DoNotOptimize(code);
  }
}
BENCHMARK(BM_Standardize);

void BM_Xsbt(benchmark::State& state) {
  const auto tree = parse::parse_translation_unit(sample_program());
  for (auto _ : state) {
    auto xs = xsbt::xsbt_string(*tree);
    benchmark::DoNotOptimize(xs);
  }
}
BENCHMARK(BM_Xsbt);

void BM_MpiRemoval(benchmark::State& state) {
  const auto tree = parse::parse_translation_unit(sample_program());
  for (auto _ : state) {
    auto result = corpus::remove_mpi_calls(*tree);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MpiRemoval);

void BM_Tokenize(benchmark::State& state) {
  const auto tree = parse::parse_translation_unit(sample_program());
  const std::string code = ast::print_code(*tree);
  for (auto _ : state) {
    auto toks = tok::code_to_tokens(code);
    benchmark::DoNotOptimize(toks);
  }
}
BENCHMARK(BM_Tokenize);

void BM_ProgramGeneration(benchmark::State& state) {
  Rng rng(11);
  for (auto _ : state) {
    auto prog = corpus::generate_random_program(rng);
    benchmark::DoNotOptimize(prog);
  }
}
BENCHMARK(BM_ProgramGeneration);

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  tensor::Tensor a = tensor::Tensor::randn({n, n}, rng, 1.0f);
  tensor::Tensor b = tensor::Tensor::randn({n, n}, rng, 1.0f);
  for (auto _ : state) {
    auto c = tensor::matmul(a, b);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          n * n * n);
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * n * n * n * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

// Raw kernel-layer GEMM: blocked vs the retained naive reference, all three
// hot orientations. `GFLOPS` counters make the blocked/naive ratio (the
// kernel-layer speedup) directly readable from the report.
template <tensor::kernels::Trans kTa, tensor::kernels::Trans kTb, bool kNaive>
void BM_GemmKernel(benchmark::State& state) {
  using tensor::kernels::Trans;
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  const auto a = rng.gaussian_vec(static_cast<std::size_t>(n) * n);
  const auto b = rng.gaussian_vec(static_cast<std::size_t>(n) * n);
  std::vector<float> c(static_cast<std::size_t>(n) * n, 0.0f);
  for (auto _ : state) {
    if (kNaive) {
      tensor::kernels::naive::gemm_acc(kTa, kTb, n, n, n, a.data(), n,
                                       b.data(), n, c.data(), n);
    } else {
      tensor::kernels::gemm_acc(kTa, kTb, n, n, n, a.data(), n, b.data(), n,
                                c.data(), n);
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * n * n * n * 1e-9,
      benchmark::Counter::kIsRate);
}
using tensor::kernels::Trans;
BENCHMARK_TEMPLATE(BM_GemmKernel, Trans::N, Trans::N, false)
    ->Name("BM_GemmBlockedNN")->Arg(128)->Arg(256)->Arg(512);
BENCHMARK_TEMPLATE(BM_GemmKernel, Trans::N, Trans::N, true)
    ->Name("BM_GemmNaiveNN")->Arg(128)->Arg(256)->Arg(512);
BENCHMARK_TEMPLATE(BM_GemmKernel, Trans::T, Trans::N, false)
    ->Name("BM_GemmBlockedTN")->Arg(256);
BENCHMARK_TEMPLATE(BM_GemmKernel, Trans::T, Trans::N, true)
    ->Name("BM_GemmNaiveTN")->Arg(256);
BENCHMARK_TEMPLATE(BM_GemmKernel, Trans::N, Trans::T, false)
    ->Name("BM_GemmBlockedNT")->Arg(256);
BENCHMARK_TEMPLATE(BM_GemmKernel, Trans::N, Trans::T, true)
    ->Name("BM_GemmNaiveNT")->Arg(256);

template <bool kNaive>
void BM_GemvKernel(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Rng rng(29);
  const auto x = rng.gaussian_vec(static_cast<std::size_t>(m));
  const auto w = rng.gaussian_vec(static_cast<std::size_t>(m) * n);
  const auto bias = rng.gaussian_vec(static_cast<std::size_t>(n));
  std::vector<float> y(static_cast<std::size_t>(n));
  for (auto _ : state) {
    if (kNaive) {
      tensor::kernels::naive::gemv(m, n, x.data(), w.data(), n, bias.data(),
                                   y.data());
    } else {
      tensor::kernels::gemv(m, n, x.data(), w.data(), n, bias.data(),
                            y.data());
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * m * n * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK_TEMPLATE(BM_GemvKernel, false)
    ->Name("BM_GemvBlocked")->Args({96, 96})->Args({96, 800})->Args({192, 192});
BENCHMARK_TEMPLATE(BM_GemvKernel, true)
    ->Name("BM_GemvNaive")->Args({96, 96})->Args({96, 800})->Args({192, 192});

void BM_Attention(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  const int d = 96;
  Rng rng(17);
  tensor::Tensor q = tensor::Tensor::randn({t, d}, rng, 1.0f);
  tensor::Tensor k = tensor::Tensor::randn({t, d}, rng, 1.0f);
  tensor::Tensor v = tensor::Tensor::randn({t, d}, rng, 1.0f);
  for (auto _ : state) {
    auto o = tensor::multi_head_attention(q, k, v, 1, 4, true);
    benchmark::DoNotOptimize(o);
  }
  // Score + PV GEMMs, halved under the causal mask.
  state.counters["GFLOPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * t * t * d * 1e-9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Attention)->Arg(64)->Arg(160)->Arg(320);

void BM_DecodeStep(benchmark::State& state) {
  nn::TransformerConfig cfg;
  cfg.vocab_size = 800;
  cfg.d_model = 96;
  cfg.heads = 4;
  cfg.ffn_dim = 192;
  cfg.encoder_layers = 2;
  cfg.decoder_layers = 2;
  cfg.max_len = 512;
  Rng rng(19);
  nn::Transformer model(cfg, rng);
  std::vector<int> src(128);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<int>(i % 700) + 6;
  }
  nn::IncrementalDecoder decoder(model, src);
  int token = 1;
  for (auto _ : state) {
    if (decoder.position() + 1 >= cfg.max_len) {
      state.PauseTiming();
      decoder = nn::IncrementalDecoder(model, src);
      state.ResumeTiming();
    }
    const auto& logits = decoder.step(token);
    benchmark::DoNotOptimize(logits);
  }
}
BENCHMARK(BM_DecodeStep);

void BM_MpiSimAllreduce(benchmark::State& state) {
  const std::string program = R"(#include <stdio.h>
#include <mpi.h>
int main(int argc, char **argv) {
    int rank;
    int size;
    int i;
    MPI_Init(&argc, &argv);
    MPI_Comm_rank(MPI_COMM_WORLD, &rank);
    MPI_Comm_size(MPI_COMM_WORLD, &size);
    double mine = (double)rank;
    double total = 0.0;
    for (i = 0; i < 50; i++) {
        MPI_Allreduce(&mine, &total, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
    }
    MPI_Finalize();
    return 0;
}
)";
  mpisim::RunOptions opts;
  opts.num_ranks = 4;
  for (auto _ : state) {
    auto result = mpisim::run_mpi_source(program, opts);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 50);
}
BENCHMARK(BM_MpiSimAllreduce);

}  // namespace

BENCHMARK_MAIN();
