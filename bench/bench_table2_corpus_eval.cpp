// Reproduces Table II: MPI-RICAL quality on the MPICodeCorpus test split --
// M-F1/Precision/Recall over all MPI functions, MCC-* over the Common Core,
// and the sequence metrics BLEU / METEOR / ROUGE-L / exact-match ACC.
#include <cstdio>

#include "bench_common.hpp"
#include "core/evaluate.hpp"
#include "core/tagger.hpp"
#include "metrics/metrics.hpp"
#include "mpidb/catalog.hpp"
#include "support/timer.hpp"

int main() {
  using namespace mpirical;
  bench::print_header("Table II -- performance on the MPICodeCorpus test set");

  auto setup = bench::ensure_trained_model();
  const std::size_t limit =
      bench::env_size("MPIRICAL_BENCH_EVAL_LIMIT", 160);
  std::vector<corpus::Example> test = setup.dataset.test;
  if (test.size() > limit) test.resize(limit);

  std::printf("[eval] greedy-decoding %zu test examples...\n", test.size());
  Timer decode_timer;
  const core::EvalSummary s = core::evaluate_model(setup.model, test);
  const double decode_s = decode_timer.seconds();
  std::printf("[eval] decoded in %.2f s (%.2f examples/s)\n", decode_s,
              test.empty() ? 0.0 : static_cast<double>(test.size()) / decode_s);

  struct Row {
    const char* name;
    double measured;
    double paper;
  };
  const Row rows[] = {
      {"M-F1", s.m_counts.f1(), 0.87},
      {"M-Precision", s.m_counts.precision(), 0.85},
      {"M-Recall", s.m_counts.recall(), 0.89},
      {"MCC-F1", s.mcc_counts.f1(), 0.89},
      {"MCC-Precision", s.mcc_counts.precision(), 0.91},
      {"MCC-Recall", s.mcc_counts.recall(), 0.87},
      {"BLEU", s.bleu, 0.93},
      {"Meteor", s.meteor, 0.62},
      {"Rouge-l", s.rouge_l, 0.95},
      {"ACC", s.acc, 0.57},
  };

  std::printf("\n-- translation engine (the paper's seq2seq formulation) --\n");
  std::printf("%-16s %12s %12s\n", "Quality Measure", "Measured", "Paper");
  for (const auto& row : rows) {
    std::printf("%-16s %12.2f %12.2f\n", row.name, row.measured, row.paper);
  }
  std::printf(
      "(TP %zu / FP %zu / FN %zu over all functions; one-line location "
      "tolerance, as in the paper.)\n",
      s.m_counts.tp, s.m_counts.fp, s.m_counts.fn);

  // The paper *evaluates* as classification; this engine implements that
  // framing directly (see DESIGN.md). Trained from scratch it is the one
  // that reaches the paper's quality band without pretraining.
  core::Tagger tagger = bench::train_tagger(setup.dataset);
  metrics::PrfCounts m_counts;
  metrics::PrfCounts mcc_counts;
  for (const auto& ex : test) {
    const auto predicted = tagger.predict(ex.input_code);
    m_counts += metrics::match_call_sites(predicted, ex.ground_truth, 1);
    mcc_counts += metrics::match_call_sites_filtered(
        predicted, ex.ground_truth, 1,
        [](const std::string& f) { return mpidb::is_common_core(f); });
  }
  std::printf("\n-- classification engine (the paper's measurement framing) --\n");
  std::printf("%-16s %12s %12s\n", "Quality Measure", "Measured", "Paper");
  std::printf("%-16s %12.2f %12.2f\n", "M-F1", m_counts.f1(), 0.87);
  std::printf("%-16s %12.2f %12.2f\n", "M-Precision", m_counts.precision(),
              0.85);
  std::printf("%-16s %12.2f %12.2f\n", "M-Recall", m_counts.recall(), 0.89);
  std::printf("%-16s %12.2f %12.2f\n", "MCC-F1", mcc_counts.f1(), 0.89);
  std::printf("%-16s %12.2f %12.2f\n", "MCC-Precision",
              mcc_counts.precision(), 0.91);
  std::printf("%-16s %12.2f %12.2f\n", "MCC-Recall", mcc_counts.recall(),
              0.87);
  std::printf(
      "(TP %zu / FP %zu / FN %zu over all functions.)\n",
      m_counts.tp, m_counts.fp, m_counts.fn);
  return 0;
}
