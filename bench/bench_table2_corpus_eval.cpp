// Reproduces Table II: MPI-RICAL quality on the MPICodeCorpus test split --
// M-F1/Precision/Recall over all MPI functions, MCC-* over the Common Core,
// and the sequence metrics BLEU / METEOR / ROUGE-L / exact-match ACC.
//
// Corpus-scale evaluation shards across worker PROCESSES with
// MPIRICAL_EVAL_SHARDS=N (default 1): the driver fork/execs N copies of this
// binary (MPIRICAL_EVAL_SHARD_ROLE=worker), hands decode waves out over
// pipes, and merges per-example records bit-identically to the unsharded
// run (src/shard/eval.hpp). Every run appends a perf-trajectory record with
// shards + examples/s to BENCH_table2.json (path override:
// MPIRICAL_BENCH_TABLE2_JSON). MPIRICAL_BENCH_SMOKE=1 shrinks the corpus,
// training, and eval for CI.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/evaluate.hpp"
#include "core/tagger.hpp"
#include "metrics/metrics.hpp"
#include "mpidb/catalog.hpp"
#include "nn/packed_model.hpp"
#include "shard/eval.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace mpirical;
  (void)argc;
  if (bench::maybe_run_eval_shard_worker()) return 0;

  const bool smoke = bench::smoke_mode();
  if (smoke) {
    // CI-sized run: tiny corpus, one epoch, short eval -- still end-to-end
    // (train, shard, decode, score). Explicit env settings win.
    bench::setenv_default("MPIRICAL_BENCH_CORPUS", "320");
    bench::setenv_default("MPIRICAL_BENCH_EPOCHS", "1");
    bench::setenv_default("MPIRICAL_BENCH_EVAL_LIMIT", "32");
    bench::setenv_default("MPIRICAL_BENCH_TAGGER_EPOCHS", "1");
    // The default wave (32) would make the whole smoke eval one chunk and
    // starve all but one shard; a wave of 8 gives every CI shard real work.
    bench::setenv_default("MPIRICAL_DECODE_WAVE", "8");
  }

  bench::print_header("Table II -- performance on the MPICodeCorpus test set");

  // Register this binary as the shard worker BEFORE evaluating so
  // MPIRICAL_EVAL_SHARDS>1 fans the decode waves out across processes.
  shard::set_worker_self_exec(argv[0]);
  const std::size_t shards = shard::env_shards();

  auto setup = bench::ensure_trained_model();
  const std::size_t limit =
      bench::env_size("MPIRICAL_BENCH_EVAL_LIMIT", 160);
  std::vector<corpus::Example> test = setup.dataset.test;
  if (test.size() > limit) test.resize(limit);

  std::printf("[eval] greedy-decoding %zu test examples across %zu shard%s...\n",
              test.size(), shards, shards == 1 ? "" : "s");
  // Pack-cache delta around the f32 eval: the one-time lazy packs land here
  // (warm_cache fires before the timed decode phase); the int8 eval below
  // packs its own panel set once more. Driver-process counters only --
  // sharded runs pack in the workers.
  const nn::PackCacheStats pc_before = nn::pack_cache_stats();
  Timer decode_timer;
  const core::EvalSummary s = core::evaluate_model(setup.model, test);
  const double decode_s = decode_timer.seconds();
  const nn::PackCacheStats pc_after = nn::pack_cache_stats();
  const double examples_per_s =
      decode_s > 0.0 && !test.empty()
          ? static_cast<double>(test.size()) / decode_s
          : 0.0;
  std::printf("[eval] decoded in %.2f s (%.2f examples/s, %zu shard%s)\n",
              decode_s, examples_per_s, shards, shards == 1 ? "" : "s");

  // The same evaluation on the int8 weights-only decode path. The toggle is
  // set before evaluate_model so fork/exec'd shard workers inherit it; the
  // caller's value is restored afterwards.
  const char* saved_i8 = std::getenv("MPIRICAL_DECODE_INT8");
  const std::string saved_i8_value = saved_i8 ? saved_i8 : "";
  setenv("MPIRICAL_DECODE_INT8", "1", 1);
  std::printf("[eval] re-running the eval on the int8 decode path...\n");
  Timer int8_timer;
  const core::EvalSummary s_i8 = core::evaluate_model(setup.model, test);
  const double decode_s_i8 = int8_timer.seconds();
  const nn::PackCacheStats pc_i8 = nn::pack_cache_stats();
  if (saved_i8) {
    setenv("MPIRICAL_DECODE_INT8", saved_i8_value.c_str(), 1);
  } else {
    unsetenv("MPIRICAL_DECODE_INT8");
  }
  std::printf(
      "[eval] int8 decoded in %.2f s (%.2fx vs f32), acc %.4f vs %.4f "
      "(drift %+.4f)\n",
      decode_s_i8, decode_s_i8 > 0.0 ? decode_s / decode_s_i8 : 0.0, s_i8.acc,
      s.acc, s_i8.acc - s.acc);

  // Snapshot footprint in both weight encodings (what MPIRICAL_SNAPSHOT_INT8
  // buys at rest).
  const std::size_t snap_bytes_f32 =
      setup.model.serialize_snapshot(/*quantize_weights=*/false).size();
  const std::size_t snap_bytes_i8 =
      setup.model.serialize_snapshot(/*quantize_weights=*/true).size();

  {
    char json[768];
    std::snprintf(
        json, sizeof(json),
        "{\"bench\":\"table2_eval\",\"shards\":%zu,\"examples\":%zu,"
        "\"wave\":%zu,\"beam_width\":1,\"seconds_decode\":%.3f,"
        "\"examples_per_s\":%.3f,\"m_f1\":%.4f,\"mcc_f1\":%.4f,"
        "\"bleu\":%.4f,\"meteor\":%.4f,\"rouge_l\":%.4f,\"acc\":%.4f,"
        "\"smoke\":%s",
        shards, test.size(), shard::decode_wave_size(), decode_s,
        examples_per_s, s.m_counts.f1(), s.mcc_counts.f1(), s.bleu, s.meteor,
        s.rouge_l, s.acc, smoke ? "true" : "false");
    std::string line(json);
    {
      // Quantized-path record: quality alongside f32 (the CI drift gate
      // reads acc/acc_int8 off this line) plus speed and at-rest size.
      char buf[384];
      std::snprintf(
          buf, sizeof(buf),
          ",\"seconds_decode_int8\":%.3f,\"speedup_int8_vs_f32\":%.3f,"
          "\"m_f1_int8\":%.4f,\"mcc_f1_int8\":%.4f,\"bleu_int8\":%.4f,"
          "\"acc_int8\":%.4f,\"acc_drift_int8\":%.4f,"
          "\"snapshot_bytes_f32\":%zu,\"snapshot_bytes_int8\":%zu",
          decode_s_i8, decode_s_i8 > 0.0 ? decode_s / decode_s_i8 : 0.0,
          s_i8.m_counts.f1(), s_i8.mcc_counts.f1(), s_i8.bleu, s_i8.acc,
          s_i8.acc - s.acc, snap_bytes_f32, snap_bytes_i8);
      line += buf;
    }
    {
      // Packed-weight-cache observability: the knob this run executed under
      // plus the driver-side pack cost and hit/miss counts around each eval
      // (pack_ms_int8 covers the int8 re-run's own panel set).
      char buf[256];
      std::snprintf(
          buf, sizeof(buf),
          "%s,\"pack_ms\":%.2f,\"pack_hits\":%llu,\"pack_misses\":%llu,"
          "\"pack_ms_int8\":%.2f",
          bench::pack_cache_config_json().c_str(),
          (pc_after.pack_ns - pc_before.pack_ns) / 1e6,
          static_cast<unsigned long long>(pc_after.hits - pc_before.hits),
          static_cast<unsigned long long>(pc_after.misses - pc_before.misses),
          (pc_i8.pack_ns - pc_after.pack_ns) / 1e6);
      line += buf;
    }
    // Snapshot-deployment observability: how the driver shipped the world
    // and what each worker's spawn actually cost (the numbers the zero-copy
    // snapshot layer exists to collapse).
    const shard::ShardRunStats stats = shard::last_run_stats();
    {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    ",\"transport\":\"%s\",\"snapshot\":%s,"
                    "\"snapshot_streamed\":%s,\"snapshot_write_ms\":%.2f,"
                    "\"snapshot_bytes\":%llu",
                    stats.transport.empty() ? "none" : stats.transport.c_str(),
                    stats.used_snapshot ? "true" : "false",
                    stats.snapshot_streamed ? "true" : "false",
                    stats.snapshot_write_ms,
                    static_cast<unsigned long long>(stats.snapshot_bytes));
      line += buf;
    }
    if (setup.from_snapshot) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), ",\"setup_snapshot_load_ms\":%.2f",
                    setup.snapshot_load_ms);
      line += buf;
    }
    {
      // Driver-side run phases from the recorder-backed stats: grant
      // round-trips, chunk churn (reassignments/steals), and raw transport
      // volume.
      char buf[384];
      std::snprintf(
          buf, sizeof(buf),
          ",\"grant_rtt_count\":%llu,\"grant_rtt_total_ms\":%.2f,"
          "\"grant_rtt_max_ms\":%.2f,\"snapshot_stream_ms\":%.2f,"
          "\"reassigned_chunks\":%llu,\"stolen_chunks\":%llu,"
          "\"bytes_sent\":%llu,\"bytes_received\":%llu",
          static_cast<unsigned long long>(stats.grant_rtt.count),
          stats.grant_rtt.total_ms(), stats.grant_rtt.max_ms(),
          stats.snapshot_stream_ms,
          static_cast<unsigned long long>(stats.reassigned_chunks),
          static_cast<unsigned long long>(stats.stolen_chunks),
          static_cast<unsigned long long>(stats.bytes_sent),
          static_cast<unsigned long long>(stats.bytes_received));
      line += buf;
    }
    auto append_array = [&line](const char* key,
                                const std::vector<double>& values) {
      line += ",\"";
      line += key;
      line += "\":[";
      for (std::size_t i = 0; i < values.size(); ++i) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%s%.2f", i > 0 ? "," : "",
                      values[i]);
        line += buf;
      }
      line += "]";
    };
    append_array("worker_startup_ms", stats.worker_startup_ms);
    append_array("worker_load_ms", stats.worker_load_ms);
    line += "}";
    std::string path = "BENCH_table2.json";
    if (const char* override_path = std::getenv("MPIRICAL_BENCH_TABLE2_JSON")) {
      path = override_path;
    }
    bench::append_json_line(path, line);
    std::printf("%s\n", line.c_str());
    for (std::size_t w = 0; w < stats.worker_startup_ms.size(); ++w) {
      if (stats.worker_startup_ms[w] < 0) continue;  // never reported
      std::printf("[eval] worker %zu: startup %.1f ms (world %s %.1f ms)\n",
                  w, stats.worker_startup_ms[w],
                  stats.used_snapshot ? "mmap-load" : "env rebuild",
                  stats.worker_load_ms[w]);
    }
  }

  struct Row {
    const char* name;
    double measured;
    double paper;
  };
  const Row rows[] = {
      {"M-F1", s.m_counts.f1(), 0.87},
      {"M-Precision", s.m_counts.precision(), 0.85},
      {"M-Recall", s.m_counts.recall(), 0.89},
      {"MCC-F1", s.mcc_counts.f1(), 0.89},
      {"MCC-Precision", s.mcc_counts.precision(), 0.91},
      {"MCC-Recall", s.mcc_counts.recall(), 0.87},
      {"BLEU", s.bleu, 0.93},
      {"Meteor", s.meteor, 0.62},
      {"Rouge-l", s.rouge_l, 0.95},
      {"ACC", s.acc, 0.57},
  };

  std::printf("\n-- translation engine (the paper's seq2seq formulation) --\n");
  std::printf("%-16s %12s %12s\n", "Quality Measure", "Measured", "Paper");
  for (const auto& row : rows) {
    std::printf("%-16s %12.2f %12.2f\n", row.name, row.measured, row.paper);
  }
  std::printf(
      "(TP %zu / FP %zu / FN %zu over all functions; one-line location "
      "tolerance, as in the paper.)\n",
      s.m_counts.tp, s.m_counts.fp, s.m_counts.fn);

  // The paper *evaluates* as classification; this engine implements that
  // framing directly (see DESIGN.md). Trained from scratch it is the one
  // that reaches the paper's quality band without pretraining.
  core::Tagger tagger = bench::train_tagger(setup.dataset);
  metrics::PrfCounts m_counts;
  metrics::PrfCounts mcc_counts;
  for (const auto& ex : test) {
    const auto predicted = tagger.predict(ex.input_code);
    m_counts += metrics::match_call_sites(predicted, ex.ground_truth, 1);
    mcc_counts += metrics::match_call_sites_filtered(
        predicted, ex.ground_truth, 1,
        [](const std::string& f) { return mpidb::is_common_core(f); });
  }
  std::printf("\n-- classification engine (the paper's measurement framing) --\n");
  std::printf("%-16s %12s %12s\n", "Quality Measure", "Measured", "Paper");
  std::printf("%-16s %12.2f %12.2f\n", "M-F1", m_counts.f1(), 0.87);
  std::printf("%-16s %12.2f %12.2f\n", "M-Precision", m_counts.precision(),
              0.85);
  std::printf("%-16s %12.2f %12.2f\n", "M-Recall", m_counts.recall(), 0.89);
  std::printf("%-16s %12.2f %12.2f\n", "MCC-F1", mcc_counts.f1(), 0.89);
  std::printf("%-16s %12.2f %12.2f\n", "MCC-Precision",
              mcc_counts.precision(), 0.91);
  std::printf("%-16s %12.2f %12.2f\n", "MCC-Recall", mcc_counts.recall(),
              0.87);
  std::printf(
      "(TP %zu / FP %zu / FN %zu over all functions.)\n",
      m_counts.tp, m_counts.fp, m_counts.fn);
  return 0;
}
