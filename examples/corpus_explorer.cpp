// Corpus explorer: builds a synthetic MPICodeCorpus and walks one example
// through the whole dataset pipeline -- standardization, MPI removal, X-SBT
// -- printing each artifact, then summarizes corpus statistics (the data
// behind Table I and Fig. 3).
//
//   ./examples/corpus_explorer [corpus_size] [seed]
#include <cstdio>
#include <cstdlib>

#include "corpus/dataset.hpp"
#include "corpus/stats.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace mpirical;

  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 5000;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  // One example through the pipeline.
  Rng rng(seed);
  corpus::Example ex;
  for (int attempt = 0; attempt < 50; ++attempt) {
    const auto prog = corpus::generate_random_program(rng);
    if (corpus::make_example(prog.source, 320, ex) &&
        !ex.ground_truth.empty()) {
      std::printf("family: %s\n", corpus::family_name(prog.family));
      break;
    }
  }
  std::printf("--- label (standardized MPI program) -----------------\n%s",
              ex.label_code.c_str());
  std::printf("\n--- input (MPI calls removed) -------------------------\n%s",
              ex.input_code.c_str());
  std::printf("\n--- X-SBT (first 400 chars) ---------------------------\n");
  std::printf("%.400s...\n", ex.input_xsbt.c_str());
  std::printf("\n--- ground truth (removed calls) ----------------------\n");
  for (const auto& call : ex.ground_truth) {
    std::printf("  %-22s line %d\n", call.callee.c_str(), call.line);
  }

  // Corpus-level statistics.
  std::printf("\nbuilding %zu-program corpus for statistics...\n", n);
  const auto corpus = corpus::build_corpus({n, seed});
  const auto stats = corpus::compute_stats(corpus);
  std::printf("lengths: <=10: %zu  11-50: %zu  51-99: %zu  >=100: %zu\n",
              stats.len_le_10, stats.len_11_50, stats.len_51_99,
              stats.len_ge_100);
  std::printf("distinct MPI functions: %zu; files with Init+Finalize: %zu\n",
              stats.function_file_counts.size(),
              stats.files_with_init_and_finalize);
  const auto sorted = corpus::sorted_function_counts(stats);
  std::printf("top functions:\n");
  for (std::size_t i = 0; i < sorted.size() && i < 8; ++i) {
    std::printf("  %-24s %zu\n", sorted[i].first.c_str(), sorted[i].second);
  }
  return 0;
}
