// Quickstart: train a small MPI-RICAL on a synthetic MPICodeCorpus and ask
// it to suggest MPI calls for a serial pi-calculation program -- the paper's
// running example (Fig. 2).
//
//   ./examples/quickstart [corpus_size] [epochs]
#include <cstdio>
#include <cstdlib>

#include "core/evaluate.hpp"
#include "core/model.hpp"
#include "corpus/dataset.hpp"
#include "snapshot/snapshot.hpp"

int main(int argc, char** argv) {
  using namespace mpirical;

  const std::size_t corpus_size =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1200;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 4;

  // 1. Build the dataset: synthesize a corpus, standardize, strip MPI calls.
  corpus::DatasetConfig dcfg;
  dcfg.corpus_size = corpus_size;
  dcfg.max_tokens = 200;  // small quickstart configuration
  std::printf("building dataset from %zu synthetic programs...\n",
              corpus_size);
  const corpus::Dataset dataset = corpus::build_dataset(dcfg);
  std::printf("dataset: %zu train / %zu val / %zu test examples\n",
              dataset.train.size(), dataset.val.size(), dataset.test.size());

  // 2. Train the translation model.
  core::ModelConfig mcfg;
  mcfg.epochs = epochs;
  mcfg.max_src_tokens = 288;
  mcfg.max_tgt_tokens = 216;
  core::MpiRical model = core::MpiRical::create(dataset, mcfg);
  std::printf("training (%d epochs, %zu parameters)...\n", epochs,
              model.transformer().parameter_count());
  model.train(dataset, [](const core::EpochLog& log) {
    std::printf("  epoch %d: train_loss %.4f  val_loss %.4f  (%.1fs)\n",
                log.epoch, log.train_loss, log.val_loss, log.seconds);
  });

  // 3. Ask for suggestions on a serial program the model has never seen.
  const std::string serial = R"(#include <stdio.h>
#include <mpi.h>

int main(int argc, char **argv) {
    int rank;
    int size;
    int i;
    int n = 100000;
    double h;
    double local_sum = 0.0;
    double pi = 0.0;
    double x;
    h = 1.0 / (double)n;
    for (i = rank; i < n; i += size) {
        x = h * ((double)i + 0.5);
        local_sum += 4.0 / (1.0 + x * x);
    }
    local_sum = local_sum * h;
    if (rank == 0) {
        printf("pi is approximately %.12f\n", pi);
    }
    return 0;
}
)";

  std::printf("\n--- serial input -------------------------------------\n%s",
              serial.c_str());
  std::string predicted;
  const auto suggestions = model.suggest(serial, &predicted);
  std::printf("\n--- predicted MPI program ----------------------------\n%s",
              predicted.c_str());
  std::printf("\n--- suggestions (function @ line) --------------------\n");
  for (const auto& s : suggestions) {
    std::printf("  %-20s line %d\n", s.callee.c_str(), s.line);
  }
  if (suggestions.empty()) {
    std::printf("  (none -- try more epochs or a larger corpus)\n");
  }

  // 4. Persist and reload through the snapshot checkpoint: save() writes
  // the mmap-able binary snapshot format (MPIRICAL_SNAPSHOT=0 reverts to
  // the legacy text checkpoint), load() auto-detects by magic, and a
  // snapshot-loaded model's weights are zero-copy views into the mapping.
  const std::string ckpt = "quickstart_model.mpsn";
  model.save(ckpt);
  const core::MpiRical reloaded = core::MpiRical::load(ckpt);
  std::string repredicted;
  reloaded.suggest(serial, &repredicted);
  // With MPIRICAL_SNAPSHOT_INT8=1 the checkpoint's weight sections are
  // lossy (int8 + per-column scales), so the reloaded f32 decode is allowed
  // to differ; in the default f32 encoding any difference is a bug.
  const char* verdict = repredicted == predicted ? "identical"
                        : mpirical::snapshot::snapshot_int8_enabled()
                            ? "differ (int8 weight sections are lossy)"
                            : "DIVERGED";
  std::printf("\nsaved + mmap-reloaded %s: predictions %s\n", ckpt.c_str(),
              verdict);
  return 0;
}
