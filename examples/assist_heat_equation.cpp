// IDE-style assistance scenario: a user is writing a 1D heat-diffusion solver
// with domain decomposition and has sketched the serial computation; MPI-RICAL
// proposes where the MPI calls belong. The example prints the user's code
// with the suggestions annotated inline, the way an editor plugin would.
//
//   ./examples/assist_heat_equation [corpus_size] [epochs]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "cast/printer.hpp"
#include "core/model.hpp"
#include "core/tagger.hpp"
#include "corpus/dataset.hpp"
#include "cparse/parser.hpp"
#include "support/strings.hpp"

int main(int argc, char** argv) {
  using namespace mpirical;

  const std::size_t corpus_size =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1200;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 4;

  corpus::DatasetConfig dcfg;
  dcfg.corpus_size = corpus_size;
  dcfg.max_tokens = 200;
  std::printf("preparing assistant (corpus %zu, %d epochs)...\n", corpus_size,
              epochs);
  const corpus::Dataset dataset = corpus::build_dataset(dcfg);

  // The classification engine (see EXPERIMENTS.md): the engine that reaches
  // the paper's quality band when trained from scratch, and the one an
  // editor integration would ship.
  core::TaggerConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.max_src_tokens = 280;
  core::Tagger tagger = core::Tagger::create(dataset, tcfg);
  tagger.train(dataset, [](const core::TaggerEpochLog& log) {
    std::printf("  epoch %d: train_loss %.4f  slot_acc %.4f\n", log.epoch,
                log.train_loss, log.val_slot_accuracy);
  });

  // The user's work-in-progress solver: computation written, communication
  // missing (exactly the Removed-Locations form the model was trained on).
  const std::string draft = R"(#include <stdio.h>
#include <mpi.h>

int main(int argc, char **argv) {
    int rank;
    int size;
    int i;
    int step;
    int local_n = 32;
    double u[34];
    double u_new[34];
    double local_sum = 0.0;
    double total = 0.0;
    for (i = 0; i < local_n + 2; i++) {
        u[i] = (double)(rank * local_n + i);
    }
    for (step = 0; step < 4; step++) {
        for (i = 1; i <= local_n; i++) {
            u_new[i] = 0.5 * (u[i - 1] + u[i + 1]);
        }
        for (i = 1; i <= local_n; i++) {
            u[i] = u_new[i];
        }
    }
    for (i = 1; i <= local_n; i++) {
        local_sum += u[i];
    }
    if (rank == 0) {
        printf("field sum = %.4f\n", total);
    }
    return 0;
}
)";

  // Standardize the draft the way the dataset pipeline does, then predict.
  const auto tree = parse::parse_translation_unit(draft);
  const std::string standardized = ast::print_code(*tree);
  const auto suggestions = tagger.predict(standardized);

  // Annotate: suggestion lines are in label coordinates (after insertion);
  // map them back onto the draft for display by subtracting the running
  // number of insertions.
  std::printf("\n=== assistant view (>> = insert an MPI call after) ====\n");
  std::map<int, std::vector<std::string>> by_draft_line;
  int shift = 0;
  for (const auto& s : suggestions) {
    by_draft_line[s.line - shift - 1].push_back(s.callee);
    ++shift;
  }
  const auto lines = split_lines(standardized);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const int line_no = static_cast<int>(i) + 1;
    std::printf("   %3d | %s\n", line_no, lines[i].c_str());
    auto it = by_draft_line.find(line_no);
    if (it != by_draft_line.end()) {
      for (const auto& fn : it->second) {
        std::printf(">>     |     %s(...)\n", fn.c_str());
      }
    }
  }

  std::printf("\n=== suggested MPI calls ===============================\n");
  if (suggestions.empty()) {
    std::printf("(no suggestions -- try more epochs or a larger corpus)\n");
  }
  for (const auto& s : suggestions) {
    std::printf("  insert %-20s at line %d\n", s.callee.c_str(), s.line);
  }
  return 0;
}
