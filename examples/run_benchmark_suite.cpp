// Runs the paper's 11 numerical-computation benchmark programs (Table III)
// under the simulated MPI runtime and validates each against its numerical
// oracle -- the "compile and run" leg of the paper's evaluation.
//
//   ./examples/run_benchmark_suite [ranks]
#include <cstdio>
#include <cstdlib>

#include "benchsuite/benchsuite.hpp"

int main(int argc, char** argv) {
  using namespace mpirical;

  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  std::printf("running the 11-program benchmark on %d simulated ranks\n\n",
              ranks);

  int passed = 0;
  for (const auto& prog : benchsuite::programs()) {
    benchsuite::BenchmarkProgram variant = prog;
    variant.ranks = ranks;
    const auto result = benchsuite::validate(variant, prog.source);
    std::printf("%-34s %s", prog.name.c_str(),
                result.valid ? "PASS" : "FAIL");
    if (!result.valid) std::printf("  (%s)", result.detail.c_str());
    std::printf("\n");
    if (result.valid) ++passed;

    // Show rank-0 output for the first program as a taste.
    if (&prog == &benchsuite::programs().front()) {
      mpisim::RunOptions opts;
      opts.num_ranks = ranks;
      const auto run = mpisim::run_mpi_source(prog.source, opts);
      std::printf("    rank-0 output: %s", run.rank_output[0].c_str());
    }
  }
  std::printf("\n%d / %zu programs validated\n", passed,
              benchsuite::programs().size());
  return passed == static_cast<int>(benchsuite::programs().size()) ? 0 : 1;
}
